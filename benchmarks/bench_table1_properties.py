"""Table 1 reproduction: benchmark properties (domain size, data size).

Paper (DATE'05, Table 1)::

    Benchmark   Domain Size   Data Size
    Med-Im04        258        825.55KB
    MxM              34      1,173.56KB
    Radar           422        905.28KB
    Shape           656      1,284.06KB
    Track           388        744.80KB

The benchmarked operation is the constraint-network construction
itself (program -> CN), which is what "domain size" measures the output
of.  The reproduced rows print at the end of the module.
"""

import pytest

from repro.bench import TABLE1_REFERENCE, BENCHMARK_NAMES, benchmark_build_options
from repro.opt.network_builder import build_layout_network
from repro.opt.report import format_table

_rows = {}


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_network_construction(benchmark, name, programs):
    """Time CN construction and record Table 1 characteristics."""
    program = programs[name]
    options = benchmark_build_options()
    result = benchmark(build_layout_network, program, options)
    paper_domain, paper_kb = TABLE1_REFERENCE[name]
    measured_kb = program.total_data_bytes() / 1024
    _rows[name] = [
        name,
        paper_domain,
        result.domain_size,
        f"{paper_kb:.2f}",
        f"{measured_kb:.2f}",
        len(result.network.variables),
        len(result.network.constraints),
    ]
    # Data size must track the paper closely; domain size is expected
    # to land in the same regime (see EXPERIMENTS.md).
    assert measured_kb == pytest.approx(paper_kb, rel=0.05)
    assert result.domain_size > 0


def test_print_table1(benchmark, programs):
    """Emit the reproduced Table 1 (run with -s to see it)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_rows) == len(BENCHMARK_NAMES)
    print("\n\n=== Table 1 reproduction ===")
    print(
        format_table(
            [
                "Benchmark",
                "paper domain",
                "ours domain",
                "paper KB",
                "ours KB",
                "arrays",
                "constraints",
            ],
            [_rows[name] for name in BENCHMARK_NAMES],
        )
    )

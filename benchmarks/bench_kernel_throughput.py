"""Propagation-kernel throughput: native vs numpy vs bitset engines.

Not a paper table -- this gates the engine ladder: on the Table 2
benchmark suite, a fixed per-network solver mix must run **>= 3x**
faster through the numpy engine than through the bitset engine, and
**>= 2x** faster again through the native C engine
(:mod:`repro.csp.native`) than through numpy, while all three return
**byte-identical** solutions, RNG streams and effort counters (nodes,
backtracks, backjumps, consistency checks, restarts).

The mix per network is the propagation-dominated serving work one
request fans out into:

* an AC-3 preprocessing pass (whole-domain revisions);
* an enhanced-scheme solve (vectorized MCV/LCV orderings);
* a forward-checking solve (vectorized MRV selection);
* a 16-seed min-conflicts restart portfolio (the lockstep batched
  chains) with a fixed step budget, the dominant share by design --
  conflict scanning is the paper workload's propagation hot spot.

Environment knobs (the CI smoke job caps the budgets and disables the
timing gate; parity is asserted either way):

* ``REPRO_BENCH_MC_STEPS``    -- per-chain step budget (default 600);
* ``REPRO_BENCH_MC_CHAINS``   -- chains per network (default 16);
* ``REPRO_BENCH_KERNEL_GATE`` -- set to ``0`` to report the numpy
  speedup without failing below 3x (shared CI runners time
  unreliably);
* ``REPRO_BENCH_NATIVE_GATE`` -- the native-vs-numpy gate: ``0``
  reports without failing, any other value is the required multiple
  (default ``2``).  Skipped entirely on compilerless hosts.

Run:  pytest benchmarks/bench_kernel_throughput.py --benchmark-only -s
"""

import os
import time

import pytest

np = pytest.importorskip("numpy")

from repro.bench import BENCHMARK_NAMES
from repro.csp.arc_consistency import ac3
from repro.csp.enhanced import EnhancedSolver
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.vectorized import as_vectorized, batch_min_conflicts
from repro.opt.report import format_table
from benchmarks.conftest import HARNESS_SEED

#: Min-conflicts budgets: the chains deliberately dominate the mix.
MC_STEPS = int(os.environ.get("REPRO_BENCH_MC_STEPS", 600))
MC_CHAINS = int(os.environ.get("REPRO_BENCH_MC_CHAINS", 16))
MC_RESTARTS = 2

#: Timing gate (>= 3x); parity is always asserted.
GATE = os.environ.get("REPRO_BENCH_KERNEL_GATE", "1") != "0"
REQUIRED_SPEEDUP = 3.0

#: Native-vs-numpy gate: "0" reports only, anything else is the
#: required multiple (default 2x).
_NATIVE_GATE_RAW = os.environ.get("REPRO_BENCH_NATIVE_GATE", "2").strip()
NATIVE_GATE = _NATIVE_GATE_RAW != "0"
NATIVE_REQUIRED_SPEEDUP = float(_NATIVE_GATE_RAW) if NATIVE_GATE else 0.0

#: Observability overhead gate: the traced mix may cost at most 3%
#: over the untraced mix (``REPRO_BENCH_OBS_GATE=0`` reports without
#: failing -- shared CI runners time unreliably).
OBS_GATE = os.environ.get("REPRO_BENCH_OBS_GATE", "1") != "0"
OBS_MAX_OVERHEAD = 0.03

_runs: dict[str, dict] = {}


def _run_mix(kernel, engine: str) -> tuple[dict, dict[str, float]]:
    """One network's request mix; returns (observables, seconds-by-op)."""
    seconds: dict[str, float] = {}

    start = time.perf_counter()
    arc = ac3(kernel, engine=engine)
    seconds["ac3"] = time.perf_counter() - start

    start = time.perf_counter()
    enhanced = EnhancedSolver(seed=HARNESS_SEED, engine=engine).solve(kernel)
    seconds["enhanced"] = time.perf_counter() - start

    start = time.perf_counter()
    forward = ForwardCheckingSolver(engine=engine).solve(kernel)
    seconds["fc"] = time.perf_counter() - start

    start = time.perf_counter()
    chains = batch_min_conflicts(
        kernel,
        seeds=[HARNESS_SEED + index for index in range(MC_CHAINS)],
        max_steps=MC_STEPS,
        max_restarts=MC_RESTARTS,
        engine=engine,
    )
    seconds["minconflicts"] = time.perf_counter() - start

    def counters(result):
        stats = result.stats.as_dict()
        stats.pop("time_seconds")
        return stats

    observed = {
        "ac3": (arc.consistent, arc.domains, arc.revisions, arc.removed),
        "enhanced": (enhanced.assignment, counters(enhanced)),
        "fc": (forward.assignment, counters(forward)),
        "chains": [
            (chain.assignment, chain.complete, counters(chain))
            for chain in chains
        ],
    }
    return observed, seconds


def _native_param():
    from repro.csp.vectorized import native_available

    return pytest.param(
        "native",
        marks=pytest.mark.skipif(
            not native_available(),
            reason="native kernel unavailable (no C compiler, no cache)",
        ),
    )


@pytest.mark.parametrize("engine", ["bitset", "numpy", _native_param()])
def test_kernel_throughput(benchmark, engine, networks):
    """Time the full-suite mix once per engine (one-shot, like Table 2)."""
    kernels = {name: networks[name].kernel() for name in BENCHMARK_NAMES}
    if engine == "numpy":
        # Warm the plane cache: a resident worker builds (or attaches)
        # the vectorized kernel once and serves many requests from it,
        # which is the throughput being modelled here.
        for kernel in kernels.values():
            as_vectorized(kernel)
    if engine == "native":
        # Same resident-worker model: compile/load the shared library
        # and lower each kernel once before the clock starts.
        from repro.csp.native.ops import as_native

        for kernel in kernels.values():
            as_native(kernel)

    def run_suite():
        observed: dict[str, dict] = {}
        seconds: dict[str, dict[str, float]] = {}
        for name, kernel in kernels.items():
            observed[name], seconds[name] = _run_mix(kernel, engine)
        return observed, seconds

    start = time.perf_counter()
    observed, seconds = run_suite()
    elapsed = time.perf_counter() - start
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"suite_seconds": elapsed, "suites_per_second": 1.0 / elapsed}
    )
    _runs[engine] = {
        "observed": observed,
        "seconds": seconds,
        "elapsed": elapsed,
    }


def test_parity_and_speedup(benchmark):
    """Byte-identical observables; gated suite throughput per tier."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert {"bitset", "numpy"} <= set(_runs), "run the engine benchmarks first"
    bitset, numpy_run = _runs["bitset"], _runs["numpy"]
    native_run = _runs.get("native")  # absent on compilerless hosts

    # Parity: solutions, UNSAT/completeness verdicts, RNG-stream-pinned
    # effort counters, AC-3 domains and revision counts -- everything
    # observable must match byte for byte across every engine that ran.
    for name in BENCHMARK_NAMES:
        assert bitset["observed"][name] == numpy_run["observed"][name], name
        if native_run is not None:
            assert bitset["observed"][name] == native_run["observed"][name], name

    timed = {"bitset": bitset, "numpy": numpy_run}
    if native_run is not None:
        timed["native"] = native_run
    rows = []
    for name in BENCHMARK_NAMES:
        per_engine = {eng: run["seconds"][name] for eng, run in timed.items()}
        rows.append(
            [
                name,
                *(
                    " / ".join(
                        f"{per_engine[eng][op] * 1e3:.1f}" for eng in timed
                    )
                    for op in ("ac3", "enhanced", "fc", "minconflicts")
                ),
                f"{sum(per_engine['bitset'].values()) / sum(per_engine[list(timed)[-1]].values()):.2f}x",
            ]
        )
    speedup = bitset["elapsed"] / numpy_run["elapsed"]
    tiers = " / ".join(f"ms {eng}" for eng in timed)
    print(f"\n\n=== Propagation-kernel throughput ({tiers}) ===")
    print(
        format_table(
            ["Benchmark", "ac3", "enhanced", "fc", f"mc x{MC_CHAINS}", "speedup"],
            rows,
        )
    )
    print(
        f"suite: bitset {bitset['elapsed']:.3f}s, numpy "
        f"{numpy_run['elapsed']:.3f}s -> {speedup:.2f}x "
        f"(gate {'>= %.1fx' % REQUIRED_SPEEDUP if GATE else 'off'})"
    )
    benchmark.extra_info.update({"speedup": speedup, "gated": GATE})
    if native_run is not None:
        native_speedup = numpy_run["elapsed"] / native_run["elapsed"]
        native_vs_bitset = bitset["elapsed"] / native_run["elapsed"]
        print(
            f"native: {native_run['elapsed']:.3f}s -> {native_speedup:.2f}x "
            f"over numpy, {native_vs_bitset:.2f}x over bitset "
            f"(gate {'>= %.1fx' % NATIVE_REQUIRED_SPEEDUP if NATIVE_GATE else 'off'})"
        )
        benchmark.extra_info.update(
            {
                "native_speedup_vs_numpy": native_speedup,
                "native_speedup_vs_bitset": native_vs_bitset,
                "native_gated": NATIVE_GATE,
            }
        )
    if GATE:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"numpy engine is {speedup:.2f}x the bitset engine; "
            f"the vectorized kernel must deliver >= {REQUIRED_SPEEDUP}x"
        )
    if native_run is not None and NATIVE_GATE:
        assert native_speedup >= NATIVE_REQUIRED_SPEEDUP, (
            f"native engine is {native_speedup:.2f}x the numpy engine; "
            f"the C kernel must deliver >= {NATIVE_REQUIRED_SPEEDUP}x "
            f"(tune with REPRO_BENCH_NATIVE_GATE)"
        )


def test_observability_overhead(benchmark, networks):
    """Tracing costs <= 3% on the mix; the disabled API writes nothing.

    Deliberately independent of ``_runs`` (the engine benchmarks above
    own that): this test times its own suite pair, once with the
    ambient observability APIs disabled (the default) and once inside a
    worker-style :func:`repro.obs.capture`, and gates the ratio.
    """
    from repro.obs import capture
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    # The no-op claim is deterministic, not a timing claim: disabled,
    # the ambient APIs hand back shared singletons and write nothing.
    assert not obs_trace.enabled() and not obs_metrics.enabled()
    assert obs_trace.span("anything") is obs_trace.span("else")
    before = obs_metrics.get_registry().snapshot()
    obs_metrics.counter("bench_noop_total")
    obs_metrics.observe("bench_noop_seconds", 1.0)
    assert obs_metrics.get_registry().snapshot() == before

    kernels = {name: networks[name].kernel() for name in BENCHMARK_NAMES}
    for kernel in kernels.values():
        as_vectorized(kernel)

    def suite() -> None:
        for kernel in kernels.values():
            _run_mix(kernel, "numpy")

    def traced_suite():
        with capture("bench_overhead") as captured:
            suite()
        return captured

    suite()  # warm-up both paths before timing
    captured = traced_suite()
    assert captured.root.children, "tracing recorded no spans"
    assert captured.registry.snapshot()["metrics"], "no metrics captured"

    plain_runs, traced_runs = [], []
    for _ in range(3):  # interleaved min-of-3: robust to ambient load
        start = time.perf_counter()
        suite()
        plain_runs.append(time.perf_counter() - start)
        start = time.perf_counter()
        traced_suite()
        traced_runs.append(time.perf_counter() - start)
    overhead = min(traced_runs) / min(plain_runs) - 1.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"obs_overhead_fraction": overhead, "gated": OBS_GATE}
    )
    print(
        f"\nobservability overhead: untraced {min(plain_runs):.3f}s, "
        f"traced {min(traced_runs):.3f}s -> {overhead * 100:+.2f}% "
        f"(gate {'<= %.0f%%' % (OBS_MAX_OVERHEAD * 100) if OBS_GATE else 'off'})"
    )
    if OBS_GATE:
        assert overhead <= OBS_MAX_OVERHEAD, (
            f"observability adds {overhead * 100:.2f}% to the traced mix; "
            f"the budget is {OBS_MAX_OVERHEAD * 100:.0f}%"
        )

"""Cluster-layer throughput: 3 routed members vs one daemon.

Not a paper table -- this gates the fingerprint-routed cluster
(:mod:`repro.service.cluster`): on a cache-cold mixed workload a
3-member cluster behind the consistent-hash router must deliver
**>= 1.8x** the single-daemon throughput while returning
**byte-identical** payloads (modulo the wall-clock timing fields each
solve necessarily re-measures), and a warm direct-to-one-member pass
must score at least one **cross-member peer cache hit** -- proof that
every fingerprint's cache entry lives on exactly one owner yet serves
the whole cluster.

On hosts with fewer than 4 cores the wall-clock gate is meaningless
(three member processes time-slice one core), so the gate falls back
to a *modeled* critical-path speedup: the single-daemon wall clock
divided by the busiest member's share of the *uncontended* per-request
solve seconds (partitioned by ring owner) -- the time the routed
schedule takes on real cores.  This mirrors the split-search
benchmark's modeled gate, which uses per-subtree CPU seconds for the
same reason: concurrent wall clocks on an oversubscribed host
overlap and cannot be summed.

Environment knobs:

* ``REPRO_BENCH_CLUSTER_GATE`` -- ``0`` reports the speedup without
  failing the 1.8x gate;
* ``REPRO_BENCH_CLUSTER_FILLER`` -- synthetic program count added to
  the five paper benchmarks (default 10).

Run:  pytest benchmarks/bench_cluster_throughput.py --benchmark-only -s
"""

import asyncio
import json
import os
import threading
import time

import pytest

from repro.bench import random_suite
from repro.service import PortfolioConfig
from repro.service.cluster import (
    ClusterConfig,
    ClusterRouter,
    member_addresses,
    spawn_member,
    wait_for_members,
)
from repro.service.daemon import DaemonConfig, SolverDaemon
from repro.service.fingerprint import request_fingerprint
from repro.service.routing import HashRing
from repro.service.stream import DaemonClient

from benchmarks.conftest import HARNESS_SEED

MEMBERS = 3
REQUIRED_SPEEDUP = 1.8
FILLER = int(os.environ.get("REPRO_BENCH_CLUSTER_FILLER", "10"))
GATE = os.environ.get("REPRO_BENCH_CLUSTER_GATE", "1") != "0"

#: Deterministic single-scheme portfolio: cluster and single-daemon
#: runs must produce identical layouts for the byte-parity check, so
#: no parallel racing (whose winner could be timing-dependent).
CONFIG = PortfolioConfig(
    schemes=("enhanced",), parallel=False, seed=HARNESS_SEED
)


def _batch_programs(programs):
    """Five paper benchmarks plus deterministic synthetic filler."""
    return list(programs.values()) + list(
        random_suite(FILLER, seed=HARNESS_SEED)
    )


def _scrub(value):
    """Drop the wall-clock fields every fresh solve re-measures
    (``solve_seconds``, outcome ``seconds``, stats ``time_seconds``);
    everything else must match to the byte."""
    if isinstance(value, dict):
        return {
            k: _scrub(v) for k, v in value.items() if "seconds" not in k
        }
    if isinstance(value, list):
        return [_scrub(item) for item in value]
    return value


def _canonical(result: dict) -> str:
    return json.dumps(_scrub(result), sort_keys=True)


def _start_router(router: ClusterRouter, address: str) -> threading.Thread:
    thread = threading.Thread(
        target=lambda: asyncio.run(router.serve_address(address)),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 30.0
    while not os.path.exists(address):
        if time.monotonic() > deadline:  # pragma: no cover
            raise TimeoutError("router socket never appeared")
        time.sleep(0.02)
    return thread


def test_cluster_beats_single_daemon(
    benchmark, programs, build_options, tmp_path, monkeypatch
):
    # Relative socket names keep the ring identities -- and therefore
    # the fingerprint->member partition the modeled gate depends on --
    # identical across runs (absolute tmp_path names would reshuffle
    # the consistent hash every invocation).
    monkeypatch.chdir(tmp_path)
    batch = _batch_programs(programs)

    # -- baseline: one cache-cold daemon serving the whole workload.
    single = SolverDaemon(
        config=CONFIG,
        options=build_options,
        daemon_config=DaemonConfig(workers=1, shards=2),
    )
    single_path = "single.sock"
    single_thread = threading.Thread(
        target=lambda: asyncio.run(single.serve_unix(single_path)),
        daemon=True,
    )
    single_thread.start()
    deadline = time.monotonic() + 30.0
    while not os.path.exists(single_path):
        if time.monotonic() > deadline:  # pragma: no cover
            raise TimeoutError("single daemon socket never appeared")
        time.sleep(0.02)
    try:
        with DaemonClient(single_path, options=build_options) as client:
            start = time.perf_counter()
            single_responses = client.solve_many(batch)
            single_seconds = time.perf_counter() - start
    finally:
        with DaemonClient(single_path) as client:
            client.shutdown()
        single_thread.join(timeout=15)
    assert all(r["ok"] and not r["from_cache"] for r in single_responses)
    single_rps = len(batch) / single_seconds

    # -- cluster: 3 cache-cold members behind the hash-routing front.
    addresses = member_addresses("", MEMBERS)
    processes = [
        spawn_member(
            address,
            addresses,
            config=CONFIG,
            options=build_options,
            workers=1,
            shards=2,
            cache_dir=f"cache-{index}.d",
        )
        for index, address in enumerate(addresses)
    ]
    router = ClusterRouter(
        ClusterConfig(members=tuple(addresses), replicas=2),
        options=build_options,
    )
    router_path = "router.sock"
    holder = {}

    def cold_pass():
        with DaemonClient(router_path, options=build_options) as client:
            start = time.perf_counter()
            holder["responses"] = client.solve_many(batch)
            holder["seconds"] = time.perf_counter() - start

    try:
        wait_for_members(addresses)
        router_thread = _start_router(router, router_path)
        benchmark.pedantic(cold_pass, rounds=1, iterations=1)

        # Warm peer-path pass: talk to ONE member directly; every
        # fingerprint another member owns must come back as a
        # cross-member peer cache hit, never a re-solve.
        with DaemonClient(addresses[0], options=build_options) as direct:
            warm = direct.solve_many(batch)
        with DaemonClient(router_path) as client:
            stats = client.stats()
            client.shutdown()
        router_thread.join(timeout=15)
    finally:
        for process in processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover
                process.terminate()
                process.join(timeout=5.0)

    responses = holder["responses"]
    cluster_seconds = holder["seconds"]
    assert len(responses) == len(batch)
    assert all(r["ok"] and not r["from_cache"] for r in responses)
    cluster_rps = len(batch) / cluster_seconds

    # Byte-identical payloads: the cluster is a faster path to the
    # same answers, not a different solver.
    for single_response, routed in zip(single_responses, responses):
        assert _canonical(routed["result"]) == _canonical(
            single_response["result"]
        )

    # Each fingerprint's entry lives exactly once, on its ring owner.
    # Per-member busy time comes from the *single-daemon* run's
    # timings: on an oversubscribed host the members' own wall clocks
    # overlap (each includes time spent descheduled under the other
    # two) and sum to ~3x the real work, but the uncontended baseline
    # measured each request cleanly -- partitioning those by ring
    # owner models what each member computes.
    ring = HashRing(addresses)
    busy = {address: 0.0 for address in addresses}
    for program, single_response in zip(batch, single_responses):
        owner = ring.owner(request_fingerprint(program, build_options))
        busy[owner] += single_response["result"]["solve_seconds"]
    assert stats["aggregate"]["cache"]["entries"] == len(batch)
    assert stats["router"]["counters"]["route_hits"] == len(batch)

    # Warm direct pass: all cache-served, >= 1 via a peer hop.
    assert all(r["ok"] and r["from_cache"] for r in warm)
    peer_hits = sum(1 for r in warm if r.get("peer"))
    assert peer_hits >= 1, "expected >= 1 cross-member peer cache hit"
    assert stats["aggregate"]["peer"]["hits"] >= peer_hits

    # Modeled critical-path speedup: single-daemon wall over the
    # busiest member's solve seconds (what routing buys on real cores).
    modeled = single_seconds / max(busy.values())
    wall = cluster_rps / single_rps
    use_wall = (os.cpu_count() or 1) >= MEMBERS + 1
    speedup = wall if use_wall else modeled

    benchmark.extra_info.update(
        {
            "single_rps": round(single_rps, 2),
            "cluster_rps": round(cluster_rps, 2),
            "wall_speedup": round(wall, 2),
            "modeled_speedup": round(modeled, 2),
            "gated_on": "wall" if use_wall else "modeled",
            "peer_hits": peer_hits,
            "requests": len(batch),
        }
    )
    print("\n[3-member cluster vs single daemon]")
    print(
        f"  single daemon: {len(batch)} programs in {single_seconds:.2f}s "
        f"({single_rps:.2f} req/s)"
    )
    print(
        f"  cluster: {len(batch)} programs in {cluster_seconds:.2f}s "
        f"({cluster_rps:.2f} req/s)"
    )
    total_busy = sum(busy.values()) or 1.0
    shares = ", ".join(
        f"{os.path.basename(a)}={busy[a] / total_busy:.0%}" for a in addresses
    )
    print(f"  partition (of {total_busy:.2f}s solve time): {shares}")
    print(
        f"  speedup: wall {wall:.2f}x, modeled {modeled:.2f}x "
        f"(gated on {'wall' if use_wall else 'modeled'}, "
        f"cpus={os.cpu_count()})"
    )
    print(f"  warm peer hits via one member: {peer_hits}/{len(batch)}")
    if GATE:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"cluster speedup {speedup:.2f}x below the "
            f"{REQUIRED_SPEEDUP}x gate"
        )

"""Extension benches: the paper's two future-work directions.

1. **Weighted constraints** (future work #1): branch & bound over a
   weighted network distinguishes between multiple solutions -- and
   degrades gracefully to a best-effort assignment on over-constrained
   networks.

2. **Dynamic layouts** (future work #2): the DP planner schedules
   layout changes between program phases and must beat the best static
   layout whenever redistribution is cheap enough.
"""

import pytest

from repro.bench import benchmark_build_options, build_benchmark
from repro.csp.weighted import BranchAndBoundSolver
from repro.ir.parser import parse_program
from repro.opt.dynamic import DynamicLayoutPlanner
from repro.opt.network_builder import build_layout_network
from repro.opt.report import format_table

PHASED = """
array B[256][256]
array P1[256][256]
array P2[256][256]
nest phase1 weight=10 {
    for i = 0 .. 255 { for j = 0 .. 255 { P1[i][j] = B[i][j] } }
}
nest phase2 weight=10 {
    for i = 0 .. 255 { for j = 0 .. 255 { P2[i][j] = B[j][i] } }
}
"""


def test_weighted_branch_and_bound(benchmark):
    """B&B on MxM's weighted network: optimum must satisfy everything
    (the hard network is satisfiable), and the weights identify the
    costliest nests' preferences."""
    program = build_benchmark("MxM")
    layout_network = build_layout_network(program, benchmark_build_options())
    weighted = layout_network.weighted()

    result = benchmark.pedantic(
        BranchAndBoundSolver().solve, args=(weighted,), rounds=1, iterations=1
    )
    assert result.fully_satisfied
    assert weighted.network.is_solution(result.assignment)


def test_weighted_tie_breaking(benchmark):
    """Weights must steer which solution is returned when several
    satisfy the hard network (the paper's stated motivation)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    program = build_benchmark("MxM")
    layout_network = build_layout_network(program, benchmark_build_options())
    weighted = layout_network.weighted()
    result = BranchAndBoundSolver().solve(weighted)
    assert result.satisfied_weight == pytest.approx(result.optimal_weight)


def test_dynamic_planner(benchmark):
    """DP planning on the phased program: one redistribution, and a
    strictly better cost than any static layout."""
    program = parse_program(PHASED, name="phased")
    planner = DynamicLayoutPlanner(redistribution_cost_per_element=2.0)

    plan = benchmark.pedantic(
        planner.plan, args=(program, "B"), rounds=1, iterations=1
    )
    assert plan.changes == 1
    assert plan.total_cost < plan.static_cost


def test_print_dynamic_summary(benchmark):
    """Emit the dynamic-layout schedule table (run with -s)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    program = parse_program(PHASED, name="phased")
    planner = DynamicLayoutPlanner(redistribution_cost_per_element=2.0)
    rows = []
    for array, plan in sorted(planner.plan_all(program).items()):
        schedule = " -> ".join(str(layout) for _, layout in plan.schedule)
        rows.append(
            [array, plan.changes, f"{100 * plan.improvement:.1f}%", schedule]
        )
    print("\n\n=== Dynamic layouts (future work #2) ===")
    print(
        format_table(
            ["array", "changes", "gain vs static", "schedule"], rows
        )
    )

"""Ablation: solver scaling on random networks (beyond the paper).

The paper's conclusion calls for "further enhancements ... to expedite
the search".  This bench compares the enhanced scheme against the two
extensions we provide -- conflict-directed backjumping and forward
checking -- on random binary networks of growing size, reporting nodes
and consistency checks (machine-independent effort).
"""

import pytest

from repro.csp.backjumping import ConflictDirectedSolver
from repro.csp.enhanced import EnhancedSolver
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.random_networks import random_network
from repro.opt.report import format_table

_SOLVERS = {
    "enhanced": lambda: EnhancedSolver(),
    "cbj": lambda: ConflictDirectedSolver(),
    "forward-checking": lambda: ForwardCheckingSolver(),
}

_SIZES = (10, 20, 30)

_results = {}


@pytest.mark.parametrize("solver_name", list(_SOLVERS))
@pytest.mark.parametrize("size", _SIZES)
def test_scaling(benchmark, solver_name, size):
    """Solve a planted-solution random network of the given size."""
    network = random_network(
        size, 6, density=0.3, tightness=0.4, seed=42 + size
    )
    solver = _SOLVERS[solver_name]()

    def solve():
        return solver.solve(network)

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert result.satisfiable
    assert network.is_solution(result.assignment)
    _results[(solver_name, size)] = result.stats
    benchmark.extra_info["nodes"] = result.stats.nodes
    benchmark.extra_info["checks"] = result.stats.consistency_checks


def test_print_scaling(benchmark):
    """Emit the scaling table (run with -s to see it)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for size in _SIZES:
        row = [size]
        for solver_name in _SOLVERS:
            stats = _results.get((solver_name, size))
            row.append(stats.nodes if stats else "-")
        rows.append(row)
    print("\n\n=== Ablation: search nodes vs network size ===")
    print(
        format_table(
            ["variables"] + [name for name in _SOLVERS], rows
        )
    )

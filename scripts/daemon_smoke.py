#!/usr/bin/env python
"""CI smoke check for the resident solver daemon.

Streams a 10-request mixed solve/evaluate batch through a running
daemon twice and asserts:

* every response is ``ok`` on both passes;
* the second pass serves **>= 50%** of requests from the daemon's
  sharded cache;
* solve payloads are byte-identical across the two passes;
* when the numpy engine served misses on a multi-worker daemon, at
  least one warm worker **attached** the shared-memory vectorized
  kernel published by a sibling (the ``engines`` breakdown in the
  daemon's ``stats`` response) instead of rebuilding it per process.

Usage::

    python -m repro.service --serve --socket /tmp/repro.sock &
    python scripts/daemon_smoke.py /tmp/repro.sock
    wait  # the smoke script asks the daemon to shut down when done

Exits non-zero (with a diagnostic) on any violation, so a CI job can
gate on it directly.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.bench import build_benchmark, random_suite
from repro.service.stream import DaemonClient, evaluate_request, solve_request


def wait_for_socket(path: str, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while not os.path.exists(path):
        if time.monotonic() > deadline:
            raise SystemExit(f"daemon socket {path} never appeared")
        time.sleep(0.1)


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        raise SystemExit(f"usage: {argv[0]} SOCKET_PATH")
    socket_path = argv[1]
    wait_for_socket(socket_path)

    # 10 mixed requests: 5 solves, 5 evaluations (cheap analytic
    # model), interleaved per program so both request kinds of one
    # fingerprint are in flight together -- with >= 2 warm workers the
    # pair lands on different processes, which is exactly the
    # shared-kernel publish/attach case the stats assertion checks.
    programs = [build_benchmark("MxM")] + list(random_suite(4, seed=3))
    requests = []
    for program in programs:
        requests.append(solve_request(program))
        requests.append(evaluate_request(program, cost_model="analytic"))

    with DaemonClient(socket_path) as client:
        hello = client.ping()
        print(f"daemon hello: {hello['result']}")
        first = client.request_many(requests)
        second = client.request_many(requests)
        stats = client.stats()

    for index, response in enumerate(first + second):
        if not response.get("ok"):
            print(f"FAIL: request {index} errored: {response.get('error')}")
            return 1

    cached = sum(bool(response.get("from_cache")) for response in second)
    fraction = cached / len(second)
    print(
        f"second pass: {cached}/{len(second)} served from cache "
        f"({100.0 * fraction:.0f}%)"
    )
    print(f"daemon counters: {stats['counters']}")
    if fraction < 0.5:
        print("FAIL: second pass must be >= 50% cache-served")
        return 1

    # Solve requests sit at the even indices (interleaved batch).
    for index in range(0, len(requests), 2):
        before, after = first[index], second[index]
        if json.dumps(before["result"], sort_keys=True) != json.dumps(
            after["result"], sort_keys=True
        ):
            print(f"FAIL: payload drift for {before['result'].get('program')}")
            return 1

    engines = stats.get("engines", {})
    print(f"daemon engines: {engines}")
    workers = hello["result"].get("workers", 1)
    if hello["result"].get("numpy") and workers >= 2 and engines.get("numpy", 0) >= 2:
        attached = engines.get("shared_attached", 0)
        if attached < 1:
            print(
                "FAIL: numpy misses on a multi-worker daemon must attach "
                "the shared vectorized kernel at least once "
                f"(engines={engines})"
            )
            return 1
        print(f"OK: {attached} shared-kernel attach(es) across warm workers")
    with DaemonClient(socket_path) as client:
        client.shutdown()
    print("OK: daemon smoke passed (daemon asked to shut down)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

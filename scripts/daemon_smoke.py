#!/usr/bin/env python
"""CI smoke check for the resident solver daemon.

Streams a 10-request mixed solve/evaluate batch through a running
daemon twice and asserts:

* every response is ``ok`` on both passes;
* the second pass serves **>= 50%** of requests from the daemon's
  sharded cache;
* solve payloads are byte-identical across the two passes;
* when the numpy engine served misses on a multi-worker daemon, at
  least one warm worker **attached** the shared-memory vectorized
  kernel published by a sibling (the ``engines`` breakdown in the
  daemon's ``stats`` response) instead of rebuilding it per process;
* the ``engines`` breakdown attributes the first pass's worker
  misses to some propagation tier (``native``/``numpy``/``bitset``;
  which one the ``auto`` crossover picks is host- and size-dependent,
  but a silent zero row means the telemetry seam broke);
* every request is sent with ``"trace": true`` and every response's
  span tree contains a ``cache_lookup`` phase;
* the ``metrics`` request kind answers with parseable Prometheus text
  covering the cache, engine, and portfolio subsystems, and the
  cache-hit counters strictly increase between the two passes;
* with a second argument naming the daemon's ``--trace-log`` file,
  the teed span trees are validated line by line.

Usage::

    python -m repro.service --serve --socket /tmp/repro.sock \
        --trace-log /tmp/repro-trace.jsonl &
    python scripts/daemon_smoke.py /tmp/repro.sock /tmp/repro-trace.jsonl
    wait  # the smoke script asks the daemon to shut down when done

Exits non-zero (with a diagnostic) on any violation, so a CI job can
gate on it directly.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.bench import build_benchmark, random_suite
from repro.obs import parse_prometheus_text, span_from_dict
from repro.service.stream import DaemonClient, evaluate_request, solve_request

#: Exposition series that must appear, by subsystem (ISSUE: at least
#: one counter per subsystem after a mixed smoke batch).
REQUIRED_SERIES = {
    "cache": ("repro_cache_hits_total", "repro_cache_misses_total"),
    "engines": ("repro_solver_solves_total",),
    "portfolio": ("repro_portfolio_requests_total",),
}


def wait_for_socket(path: str, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while not os.path.exists(path):
        if time.monotonic() > deadline:
            raise SystemExit(f"daemon socket {path} never appeared")
        time.sleep(0.1)


def _cache_hits(text: str) -> float:
    parsed = parse_prometheus_text(text)
    return sum(
        value
        for name, _, value in parsed["samples"]
        if name == "repro_cache_hits_total"
    )


def _check_exposition(text: str) -> int:
    """Validate one scrape body; returns the number of failures."""
    parsed = parse_prometheus_text(text)  # raises on malformed text
    series = {name for name, _, _ in parsed["samples"]}
    failures = 0
    for subsystem, wanted in REQUIRED_SERIES.items():
        missing = [name for name in wanted if name not in series]
        if missing:
            print(f"FAIL: {subsystem} metrics missing from scrape: {missing}")
            failures += 1
    if "repro_request_seconds_count" not in series:
        print("FAIL: request latency histogram missing from scrape")
        failures += 1
    return failures


def _check_trace(response: dict) -> int:
    """One traced response must carry a tree with a cache_lookup phase."""
    payload = response.get("trace")
    if not payload:
        print(f"FAIL: response {response.get('id')} carries no trace")
        return 1
    tree = span_from_dict(payload)
    if tree.find("cache_lookup") is None:
        print(
            f"FAIL: trace of request {response.get('id')} has no "
            f"cache_lookup phase (phases: {[c.name for c in tree.children]})"
        )
        return 1
    return 0


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        raise SystemExit(f"usage: {argv[0]} SOCKET_PATH [TRACE_LOG]")
    socket_path = argv[1]
    trace_log = argv[2] if len(argv) == 3 else None
    wait_for_socket(socket_path)

    # 10 mixed requests: 5 solves, 5 evaluations (cheap analytic
    # model), interleaved per program so both request kinds of one
    # fingerprint are in flight together -- with >= 2 warm workers the
    # pair lands on different processes, which is exactly the
    # shared-kernel publish/attach case the stats assertion checks.
    programs = [build_benchmark("MxM")] + list(random_suite(4, seed=3))
    requests = []
    for program in programs:
        requests.append(solve_request(program, trace=True))
        requests.append(
            evaluate_request(program, cost_model="analytic", trace=True)
        )

    with DaemonClient(socket_path) as client:
        hello = client.ping()
        print(f"daemon hello: {hello['result']}")
        first = client.request_many(requests)
        first_scrape = client.metrics()
        second = client.request_many(requests)
        second_scrape = client.metrics()
        stats = client.stats()

    failures = 0
    for index, response in enumerate(first + second):
        if not response.get("ok"):
            print(f"FAIL: request {index} errored: {response.get('error')}")
            return 1
        failures += _check_trace(response)
    if failures:
        return 1
    print(f"OK: all {len(first + second)} span trees have a cache_lookup phase")

    failures += _check_exposition(second_scrape)
    hits_first, hits_second = _cache_hits(first_scrape), _cache_hits(second_scrape)
    print(f"cache hits by scrape: {hits_first:.0f} -> {hits_second:.0f}")
    if not hits_second > hits_first:
        print("FAIL: cache-hit counters must strictly increase across passes")
        failures += 1
    if failures:
        return 1
    print("OK: metrics exposition parses and covers every subsystem")

    cached = sum(bool(response.get("from_cache")) for response in second)
    fraction = cached / len(second)
    print(
        f"second pass: {cached}/{len(second)} served from cache "
        f"({100.0 * fraction:.0f}%)"
    )
    print(f"daemon counters: {stats['counters']}")
    if fraction < 0.5:
        print("FAIL: second pass must be >= 50% cache-served")
        return 1

    # Solve requests sit at the even indices (interleaved batch).
    for index in range(0, len(requests), 2):
        before, after = first[index], second[index]
        if json.dumps(before["result"], sort_keys=True) != json.dumps(
            after["result"], sort_keys=True
        ):
            print(f"FAIL: payload drift for {before['result'].get('program')}")
            return 1

    engines = stats.get("engines", {})
    print(f"daemon engines: {engines}")
    workers = hello["result"].get("workers", 1)
    if hello["result"].get("numpy") and workers >= 2 and engines.get("numpy", 0) >= 2:
        attached = engines.get("shared_attached", 0)
        if attached < 1:
            print(
                "FAIL: numpy misses on a multi-worker daemon must attach "
                "the shared vectorized kernel at least once "
                f"(engines={engines})"
            )
            return 1
        print(f"OK: {attached} shared-kernel attach(es) across warm workers")

    tier_total = sum(engines.get(tier, 0) for tier in ("native", "numpy", "bitset"))
    if tier_total < 1:
        print(
            "FAIL: the first pass dispatched misses to workers, so the "
            f"engine breakdown cannot be empty (engines={engines})"
        )
        return 1
    if engines.get("native", 0):
        print(f"OK: {engines['native']} miss(es) served by the native tier")

    if trace_log is not None:
        # Span trees are teed before each response is written, so the
        # file is complete once every response has been read.
        with open(trace_log, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        expected = len(first) + len(second)
        if len(lines) < expected:
            print(
                f"FAIL: trace log has {len(lines)} lines; expected "
                f">= {expected} (one per served solve/evaluate request)"
            )
            return 1
        for number, line in enumerate(lines, start=1):
            tree = span_from_dict(json.loads(line))
            if tree.find("cache_lookup") is None:
                print(f"FAIL: trace-log line {number} has no cache_lookup")
                return 1
        print(f"OK: trace log carries {len(lines)} valid span trees")

    with DaemonClient(socket_path) as client:
        client.shutdown()
    print("OK: daemon smoke passed (daemon asked to shut down)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

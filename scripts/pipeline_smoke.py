#!/usr/bin/env python
"""CI smoke check for the optimizer pass pipeline.

Two gates, both over the five paper programs:

* **Default-pipeline equivalence** -- runs each program through
  ``LayoutOptimizer``'s default pipeline and asserts layouts, solver
  effort counters and exactness are byte-identical to the recorded
  seed expectations in ``scripts/pipeline_expectations.json`` (the
  pre-refactor monolith's outcomes).  A drift here means the pass
  refactor changed observable solver behavior.
* **Extended-pipeline composition** -- reruns each program through a
  reordered/extended pipeline (``build, solve, repair, joint,
  dynamic, transform``) under span recording, asserting it completes,
  every pass emitted its ``pass:<name>`` span and timing, the joint
  pass never scores worse than the default's analytic cost, and the
  dynamic pass planned a schedule for every referenced array.

Usage::

    python scripts/pipeline_smoke.py            # check against expectations
    python scripts/pipeline_smoke.py --record   # (re)write the expectations

Exits non-zero with a diagnostic on any violation, so a CI job can
gate on it directly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench.programs import (
    BENCHMARK_NAMES,
    benchmark_build_options,
    build_benchmark,
)
from repro.eval import AnalyticCostModel
from repro.obs import trace as obs_trace
from repro.opt.optimizer import LayoutOptimizer
from repro.service.stream import layouts_to_wire

EXPECTATIONS = Path(__file__).with_name("pipeline_expectations.json")

#: The reordered/extended pipeline of gate (b).
EXTENDED_PASSES = ("build", "solve", "repair", "joint", "dynamic", "transform")


def _outcome_record(outcome) -> dict:
    counters = outcome.stats.as_dict()
    counters.pop("time_seconds", None)
    return {
        "scheme": outcome.scheme,
        "exact": outcome.exact,
        "layouts": layouts_to_wire(outcome.layouts),
        "stats": counters,
    }


def _default_outcomes() -> dict:
    options = benchmark_build_options()
    records = {}
    for name in BENCHMARK_NAMES:
        optimizer = LayoutOptimizer(scheme="enhanced", seed=0, options=options)
        records[name] = _outcome_record(optimizer.optimize(build_benchmark(name)))
    return records


def record() -> int:
    EXPECTATIONS.write_text(
        json.dumps(
            {"scheme": "enhanced", "seed": 0, "programs": _default_outcomes()},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"recorded expectations for {len(BENCHMARK_NAMES)} programs "
          f"-> {EXPECTATIONS}")
    return 0


def check_default_pipeline() -> int:
    if not EXPECTATIONS.exists():
        print(f"FAIL: no expectations file at {EXPECTATIONS}; "
              "run with --record first")
        return 1
    expected = json.loads(EXPECTATIONS.read_text())["programs"]
    failures = 0
    for name, got in _default_outcomes().items():
        want = expected.get(name)
        if want is None:
            print(f"FAIL: {name}: no recorded expectation")
            failures += 1
            continue
        drifted = [
            field
            for field in ("scheme", "exact", "layouts", "stats")
            if got[field] != want[field]
        ]
        for field in drifted:
            print(f"FAIL: {name}: {field} drifted from seed expectation\n"
                  f"  want: {want[field]}\n  got:  {got[field]}")
        failures += len(drifted)
        if not drifted:
            print(f"ok: {name}: default pipeline byte-identical "
                  f"({'exact' if got['exact'] else 'best-effort'}, "
                  f"{len(got['layouts'])} arrays)")
    return failures


def check_extended_pipeline() -> int:
    options = benchmark_build_options()
    analytic = AnalyticCostModel()
    failures = 0
    for name in BENCHMARK_NAMES:
        program = build_benchmark(name)
        default = LayoutOptimizer(
            scheme="enhanced", seed=0, options=options
        ).optimize(program)
        sequential = analytic.score(
            program, default.layouts, default.transforms
        ).value
        with obs_trace.recording(f"pipeline:{name}") as root:
            outcome = LayoutOptimizer(
                scheme="enhanced",
                seed=0,
                options=options,
                passes=list(EXTENDED_PASSES),
            ).optimize(program)
        problems = []
        for pass_name in EXTENDED_PASSES:
            if root.find(f"pass:{pass_name}") is None:
                problems.append(f"missing span pass:{pass_name}")
            if pass_name not in outcome.pass_seconds:
                problems.append(f"missing timing for pass {pass_name!r}")
        if outcome.cost is None or outcome.cost.value > sequential:
            problems.append(
                f"joint cost {outcome.cost and outcome.cost.value} worse "
                f"than sequential default {sequential}"
            )
        if outcome.dynamic is None or set(outcome.dynamic) != set(
            program.referenced_arrays()
        ):
            problems.append("dynamic pass planned no full schedule set")
        if outcome.transforms is None:
            problems.append("no transforms in the outcome")
        if problems:
            failures += len(problems)
            for problem in problems:
                print(f"FAIL: {name}: {problem}")
        else:
            joint_gain = (
                100.0 * (sequential - outcome.cost.value) / sequential
                if sequential
                else 0.0
            )
            print(f"ok: {name}: extended pipeline "
                  f"[{', '.join(EXTENDED_PASSES)}] complete, "
                  f"joint analytic gain {joint_gain:.2f}%, "
                  f"{sum(p.changes for p in outcome.dynamic.values())} "
                  f"dynamic changes")
    return failures


def main(argv) -> int:
    if "--record" in argv:
        return record()
    failures = check_default_pipeline()
    failures += check_extended_pipeline()
    if failures:
        print(f"pipeline smoke: {failures} failure(s)")
        return 1
    print("pipeline smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

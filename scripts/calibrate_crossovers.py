#!/usr/bin/env python
"""Measure the engine-ladder crossovers on this host.

The ``auto`` engine resolution (:func:`repro.csp.vectorized.resolve_engine`)
and AC-3's per-arc routing are driven by three measured constants:

* ``NATIVE_MIN_SUPPORT_CELLS`` -- the network size (directed support
  cells) above which the native C kernel beats the bitset loops;
* ``AUTO_MIN_SUPPORT_CELLS``   -- where the numpy planes beat the
  bitset loops (the rung used when native is unavailable);
* ``AC3_ARC_CROSSOVER_CELLS``  -- the per-arc support-matrix size
  above which a numpy whole-domain revision beats the bitset loop
  inside a numpy-resolved AC-3 run.

The shipped defaults were measured on one development host; this
script re-measures them on *your* hardware and prints ready-to-paste
environment overrides (each constant reads its ``REPRO_*`` variable at
import).  The constants only steer ``auto`` cost -- results are
byte-identical on every engine -- so a stale calibration is never
wrong, only slower.

Usage::

    PYTHONPATH=src python scripts/calibrate_crossovers.py [--repeats N]

"""

from __future__ import annotations

import argparse
import statistics
import time

from repro.csp.compiled import compile_network
from repro.csp.minconflicts import MinConflictsSolver
from repro.csp.random_networks import random_network
from repro.csp.vectorized import (
    numpy_available,
    native_available,
    support_cells,
)


def _time_solve(kernel, engine: str, repeats: int) -> float:
    """Median seconds for the calibration workload on one engine.

    A short min-conflicts walk is the propagation-dominated workload
    the ladder optimizes for (the Table 2 serving mix's hot spot).
    """
    samples = []
    solver = MinConflictsSolver(seed=1, max_steps=60, max_restarts=1, engine=engine)
    solver.solve(kernel)  # warm any lazy lowering outside the clock
    for _ in range(repeats):
        start = time.perf_counter()
        solver.solve(kernel)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _ladder(repeats: int):
    """(cells, seconds-by-engine) for a ladder of network sizes."""
    shapes = [
        (2, 2),
        (3, 2),
        (3, 3),
        (4, 3),
        (5, 4),
        (6, 5),
        (8, 6),
        (10, 8),
        (14, 10),
        (20, 12),
    ]
    engines = ["bitset"]
    if numpy_available():
        engines.append("numpy")
    if native_available():
        engines.append("native")
    rows = []
    for variables, domain in shapes:
        network = random_network(
            variables, domain, density=0.6, tightness=0.3, seed=7
        )
        kernel = compile_network(network)
        cells = support_cells(kernel)
        timing = {
            engine: _time_solve(kernel, engine, repeats) for engine in engines
        }
        rows.append((cells, timing))
    rows.sort(key=lambda row: row[0])
    return rows


def _crossover(rows, challenger: str, champion: str = "bitset") -> int | None:
    """Smallest cell count from which the challenger stays ahead."""
    candidate = None
    for cells, timing in rows:
        if challenger not in timing:
            return None
        if timing[challenger] <= timing[champion]:
            if candidate is None:
                candidate = cells
        else:
            candidate = None  # must win from here *up*, not once
    return candidate


def _ac3_arc_crossover(repeats: int) -> int | None:
    """Per-arc revision: bitset loop vs numpy masked-any, by width."""
    if not numpy_available():
        return None
    from repro.csp.arc_consistency import _ac3_numpy

    candidate = None
    for domain in (2, 4, 8, 16, 24, 32, 48, 64):
        network = random_network(
            2, domain, density=1.0, tightness=0.25, seed=11
        )
        kernel = compile_network(network)
        cells = domain * domain

        def run(crossover: int) -> float:
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                for _ in range(30):
                    _ac3_numpy(kernel, crossover)
                samples.append(time.perf_counter() - start)
            return statistics.median(samples)

        run(0)  # warm the planes outside the clock
        pure_numpy = run(0)  # crossover 0: every arc on numpy
        pure_bitset = run(1 << 30)  # huge crossover: every arc on bitset
        if pure_numpy <= pure_bitset:
            if candidate is None:
                candidate = cells
        else:
            candidate = None
    return candidate


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats",
        type=int,
        default=9,
        help="timing samples per point (median taken; default 9)",
    )
    args = parser.parse_args()

    print("engine availability: numpy =", numpy_available(), "| native =", native_available())
    rows = _ladder(args.repeats)
    engines = list(rows[0][1])
    header = "cells".rjust(8) + "".join(e.rjust(12) for e in engines)
    print("\ncalibration ladder (median seconds per solve):")
    print(header)
    for cells, timing in rows:
        print(
            str(cells).rjust(8)
            + "".join(f"{timing[e] * 1e6:9.0f}us".rjust(12) for e in engines)
        )

    suggestions: dict[str, int] = {}
    native_cells = _crossover(rows, "native")
    if native_cells is not None:
        suggestions["REPRO_NATIVE_MIN_SUPPORT_CELLS"] = native_cells
    numpy_cells = _crossover(rows, "numpy")
    if numpy_cells is not None:
        suggestions["REPRO_AUTO_MIN_SUPPORT_CELLS"] = numpy_cells
    arc_cells = _ac3_arc_crossover(args.repeats)
    if arc_cells is not None:
        suggestions["REPRO_AC3_ARC_CROSSOVER_CELLS"] = arc_cells

    if not suggestions:
        print("\nno crossovers found (single-engine host); nothing to tune")
        return 0
    print("\nready-to-paste overrides for this host:")
    for name, value in suggestions.items():
        print(f"export {name}={value}")
    print(
        "\n(the constants steer only the auto engine choice; results are\n"
        "byte-identical on every engine, so these are pure cost knobs)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""CI smoke check for the fingerprint-routed daemon cluster.

Points at a running 3-member cluster (started with ``--serve-cluster``)
and asserts the routing contract end to end:

* a mixed 12-request solve/evaluate batch through the router answers
  ``ok`` with every request routed to its fingerprint's ring owner
  (``route_hits`` == requests in the router stats);
* every routed payload is **byte-identical** to a single standalone
  daemon solving the same batch with the same portfolio (modulo the
  wall-clock ``*seconds`` fields each fresh solve re-measures);
* a warm pass sent *directly to one member* (bypassing the router) is
  fully cache-served with at least one **cross-member peer hit** --
  the member asked the fingerprint's owner over the one-hop
  ``cache_lookup`` wire kind instead of re-solving;
* after a member is killed mid-run, re-sending the batch through the
  router records at least one **failover** to a ring replica and still
  answers every request correctly (byte-identical again);
* cluster ``stats`` aggregates member counters and cache totals, and
  the ``metrics`` roll-up exposes the ``repro_cluster_*`` vocabulary
  with members/reachable gauges reflecting the kill.

Usage::

    python -m repro.service --serve-cluster 3 --socket /tmp/cluster.sock \
        --portfolio enhanced --sequential --workers 1 &
    python scripts/cluster_smoke.py /tmp/cluster.sock
    wait  # the smoke script asks the cluster to shut down when done

Exits non-zero (with a diagnostic) on any violation, so a CI job can
gate on it directly.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile
import threading
import time

from repro.bench import benchmark_build_options, build_benchmark, random_suite
from repro.obs import parse_prometheus_text
from repro.service.daemon import DaemonConfig, SolverDaemon
from repro.service.fingerprint import request_fingerprint
from repro.service.portfolio import PortfolioConfig
from repro.service.routing import HashRing
from repro.service.stream import DaemonClient, evaluate_request, solve_request

#: Must match the portfolio the CI job starts the cluster with
#: (``--portfolio enhanced --sequential``): byte parity compares two
#: *independent* solves, so the winner must be timing-independent.
CONFIG = PortfolioConfig.parse(
    "enhanced", seed=0, deadline_seconds=120.0, parallel=False
)

#: Cluster metric series that must appear in the rolled-up scrape.
REQUIRED_SERIES = (
    "repro_cluster_router_total",
    "repro_cluster_peer_total",
    "repro_cluster_members",
    "repro_cluster_members_reachable",
    "repro_cache_bytes_on_disk",
)


def wait_for_socket(path: str, timeout: float = 90.0) -> None:
    deadline = time.monotonic() + timeout
    while not os.path.exists(path):
        if time.monotonic() > deadline:
            raise SystemExit(f"socket {path} never appeared")
        time.sleep(0.1)


def _scrub(value):
    """Strip re-measured timing fields for byte-parity comparison."""
    if isinstance(value, dict):
        return {k: _scrub(v) for k, v in value.items() if "seconds" not in k}
    if isinstance(value, list):
        return [_scrub(item) for item in value]
    return value


def _canonical(result: dict) -> str:
    return json.dumps(_scrub(result), sort_keys=True)


def _mixed_requests(programs) -> list[dict]:
    requests = []
    for program in programs:
        requests.append(solve_request(program))
        requests.append(evaluate_request(program, cost_model="analytic"))
    return requests


def _reference_payloads(requests) -> list[str]:
    """Solve the batch on one standalone in-process daemon."""
    daemon = SolverDaemon(
        config=CONFIG,
        options=benchmark_build_options(),
        daemon_config=DaemonConfig(workers=1, shards=2),
    )
    socket_path = os.path.join(tempfile.mkdtemp(), "single.sock")
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.serve_unix(socket_path)), daemon=True
    )
    thread.start()
    wait_for_socket(socket_path)
    try:
        with DaemonClient(socket_path) as client:
            responses = client.request_many(requests)
    finally:
        with DaemonClient(socket_path) as client:
            client.shutdown()
        thread.join(timeout=30)
    if not all(r.get("ok") for r in responses):
        raise SystemExit("reference single daemon failed the batch")
    return [_canonical(r["result"]) for r in responses]


def _check_parity(label: str, responses, reference) -> int:
    failures = 0
    for index, (response, expected) in enumerate(zip(responses, reference)):
        if not response.get("ok"):
            print(f"FAIL: {label} request {index} errored: {response.get('error')}")
            failures += 1
        elif _canonical(response["result"]) != expected:
            print(f"FAIL: {label} payload {index} drifted from single daemon")
            failures += 1
    return failures


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        raise SystemExit(f"usage: {argv[0]} ROUTER_SOCKET")
    router_path = argv[1]
    wait_for_socket(router_path)

    programs = [build_benchmark("MxM")] + list(random_suite(5, seed=3))
    requests = _mixed_requests(programs)
    options = benchmark_build_options()

    with DaemonClient(router_path) as client:
        hello = client.ping()["result"]
    if hello.get("role") != "router":
        raise SystemExit(f"expected a router at {router_path}, got {hello}")
    members = hello["members"]
    print(f"router hello: {len(members)} members, replicas={hello['replicas']}")
    for member in members:
        wait_for_socket(member)

    print("computing single-daemon reference payloads...")
    reference = _reference_payloads(requests)

    failures = 0

    # -- pass 1: cold, through the router (populates the owners).
    with DaemonClient(router_path) as client:
        routed = client.request_many(requests)
        stats = client.stats()
    failures += _check_parity("routed", routed, reference)
    route_hits = stats["router"]["counters"]["route_hits"]
    if route_hits < len(requests):
        print(f"FAIL: {route_hits}/{len(requests)} requests hit the ring owner")
        failures += 1
    if failures:
        return 1
    print(f"OK: {len(routed)} routed requests, all owner-hits, byte-identical")

    # -- pass 2: warm, direct to one member -- peer hits, no re-solve.
    with DaemonClient(members[0]) as direct:
        warm = direct.request_many(requests)
    peer_hits = sum(1 for r in warm if r.get("peer"))
    cached = sum(bool(r.get("from_cache")) for r in warm)
    print(f"direct pass via {os.path.basename(members[0])}: "
          f"{cached}/{len(warm)} cache-served, {peer_hits} peer hits")
    if not all(r.get("ok") for r in warm):
        print("FAIL: direct member pass errored")
        return 1
    if cached < len(warm):
        print("FAIL: warm direct pass must be fully cache-served")
        failures += 1
    if peer_hits < 1:
        print("FAIL: expected >= 1 cross-member peer cache hit")
        failures += 1
    if failures:
        return 1

    # -- pass 3: kill the busiest non-front member, re-run through the
    # router, and demand failover to a replica with correct answers.
    ring = HashRing(members)
    owned: dict[str, int] = {member: 0 for member in members}
    for program in programs:
        owned[ring.owner(request_fingerprint(program, options))] += 1
    victim = max(
        (m for m in members if m != members[0]), key=lambda m: owned[m]
    )
    if owned[victim] < 1:
        print(f"FAIL: victim {victim} owns no fingerprints; bad test batch")
        return 1
    print(f"killing member {os.path.basename(victim)} "
          f"(owns {owned[victim]}/{len(programs)} fingerprints)")
    with DaemonClient(victim) as doomed:
        doomed.shutdown()
    deadline = time.monotonic() + 30.0
    while os.path.exists(victim) and time.monotonic() < deadline:
        time.sleep(0.1)

    with DaemonClient(router_path) as client:
        after = client.request_many(requests)
        stats = client.stats()
        scrape = client.metrics()
    failures += _check_parity("failover", after, reference)
    counters = stats["router"]["counters"]
    print(f"router counters after kill: {counters}")
    if counters["failovers"] < 1:
        print("FAIL: router recorded no failover after a member death")
        failures += 1
    if victim in stats["router"]["reachable"]:
        print("FAIL: dead member still listed as reachable")
        failures += 1
    if failures:
        return 1
    print("OK: failover pass byte-identical, "
          f"{counters['failovers']} failover(s) recorded")

    # -- cluster-wide stats and metrics roll-up.
    aggregate = stats["aggregate"]
    if aggregate["peer"].get("hits", 0) < peer_hits:
        print(f"FAIL: aggregate peer hits {aggregate['peer']} < {peer_hits}")
        failures += 1
    if aggregate["cache"]["entries"] < len(programs):
        print(f"FAIL: aggregate cache entries {aggregate['cache']} "
              f"< {len(programs)} fingerprints")
        failures += 1
    parsed = parse_prometheus_text(scrape)
    series = {name for name, _, _ in parsed["samples"]}
    missing = [name for name in REQUIRED_SERIES if name not in series]
    if missing:
        print(f"FAIL: cluster metrics missing from roll-up: {missing}")
        failures += 1
    reachable = [
        value
        for name, _, value in parsed["samples"]
        if name == "repro_cluster_members_reachable"
    ]
    if not reachable or reachable[0] != len(members) - 1:
        print(f"FAIL: members_reachable {reachable} != {len(members) - 1}")
        failures += 1
    if failures:
        return 1
    print("OK: cluster stats and metrics roll-up cover the routing vocabulary")

    with DaemonClient(router_path) as client:
        client.shutdown()
    print("OK: cluster smoke passed (cluster asked to shut down)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Tests for weighted networks (branch & bound) and min-conflicts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.minconflicts import MinConflictsSolver
from repro.csp.network import ConstraintNetwork
from repro.csp.random_networks import random_network
from repro.csp.weighted import BranchAndBoundSolver, WeightedNetwork
from tests.csp.test_network import paper_example_network


def _conflicting_pair_network() -> ConstraintNetwork:
    """Two constraints over (x, y) would be contradictory if merged, so
    we encode them as a triangle: x-y wants equal, y-z wants equal,
    x-z wants different -- at most 2 of 3 satisfiable."""
    network = ConstraintNetwork()
    for name in ("x", "y", "z"):
        network.add_variable(name, [0, 1])
    equal = [(0, 0), (1, 1)]
    different = [(0, 1), (1, 0)]
    network.add_constraint("x", "y", equal)
    network.add_constraint("y", "z", equal)
    network.add_constraint("x", "z", different)
    return network


class TestWeightedNetwork:
    def test_default_weights(self):
        weighted = WeightedNetwork(paper_example_network())
        assert weighted.total_weight == pytest.approx(6.0)

    def test_explicit_weights(self):
        network = _conflicting_pair_network()
        weighted = WeightedNetwork(
            network,
            {frozenset(("x", "z")): 10.0},
        )
        assert weighted.weight_between("x", "z") == 10.0
        assert weighted.weight_between("x", "y") == 1.0

    def test_unconstrained_pair_weight_zero(self):
        weighted = WeightedNetwork(_conflicting_pair_network())
        assert weighted.weight_between("x", "x2") == 0.0

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedNetwork(
                _conflicting_pair_network(), {frozenset(("x", "y")): 0.0}
            )

    def test_satisfied_weight(self):
        network = _conflicting_pair_network()
        weighted = WeightedNetwork(network)
        assignment = {"x": 0, "y": 0, "z": 0}  # violates x-z only
        assert weighted.satisfied_weight(assignment) == pytest.approx(2.0)


class TestBranchAndBound:
    def test_satisfiable_network_fully_satisfied(self):
        weighted = WeightedNetwork(paper_example_network())
        result = BranchAndBoundSolver().solve(weighted)
        assert result.fully_satisfied
        assert weighted.network.is_solution(result.assignment)

    def test_unsat_network_best_effort(self):
        weighted = WeightedNetwork(_conflicting_pair_network())
        result = BranchAndBoundSolver().solve(weighted)
        assert not result.fully_satisfied
        assert result.satisfied_weight == pytest.approx(2.0)

    def test_weights_steer_which_constraint_is_dropped(self):
        """Future work #1: weights distinguish between solutions.  With
        x-z heavily weighted, the optimum violates an equality instead."""
        network = _conflicting_pair_network()
        weighted = WeightedNetwork(network, {frozenset(("x", "z")): 10.0})
        result = BranchAndBoundSolver().solve(weighted)
        assignment = result.assignment
        assert assignment["x"] != assignment["z"]  # x-z satisfied
        assert result.satisfied_weight == pytest.approx(11.0)

    @given(st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_optimum_at_least_greedy(self, seed):
        """B&B must do at least as well as any single assignment we can
        construct greedily (here: the planted assignment region)."""
        network = random_network(
            6, 3, density=0.6, tightness=0.4, seed=seed, plant_solution=True
        )
        weighted = WeightedNetwork(network)
        result = BranchAndBoundSolver().solve(weighted)
        # Planted solution exists, so the optimum is full satisfaction.
        assert result.fully_satisfied

    def test_stats_populated(self):
        weighted = WeightedNetwork(paper_example_network())
        result = BranchAndBoundSolver().solve(weighted)
        assert result.stats.nodes > 0


class TestMinConflicts:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            MinConflictsSolver(max_steps=0)
        with pytest.raises(ValueError):
            MinConflictsSolver(max_restarts=0)

    def test_restart_counter(self):
        # Unsatisfiable triangle: every restart is consumed.
        network = ConstraintNetwork()
        for name in ("x", "y", "z"):
            network.add_variable(name, [0, 1])
        different = [(0, 1), (1, 0)]
        network.add_constraint("x", "y", different)
        network.add_constraint("y", "z", different)
        network.add_constraint("x", "z", different)
        solver = MinConflictsSolver(seed=1, max_steps=30, max_restarts=3)
        result = solver.solve(network)
        assert result.stats.restarts == 3

    @given(st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_solutions_are_verified_solutions(self, seed):
        network = random_network(
            8, 4, density=0.3, tightness=0.3, seed=seed, plant_solution=True
        )
        result = MinConflictsSolver(seed=seed).solve(network)
        if result.satisfiable:
            assert network.is_solution(result.assignment)


class TestRandomNetworkGenerator:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_network(1, 3, 0.5, 0.5)
        with pytest.raises(ValueError):
            random_network(3, 0, 0.5, 0.5)
        with pytest.raises(ValueError):
            random_network(3, 3, 1.5, 0.5)
        with pytest.raises(ValueError):
            random_network(3, 3, 0.5, 1.0)

    def test_determinism(self):
        a = random_network(6, 3, 0.5, 0.4, seed=9)
        b = random_network(6, 3, 0.5, 0.4, seed=9)
        assert a.variables == b.variables
        assert {
            (c.first, c.second): c.pairs for c in a.constraints
        } == {(c.first, c.second): c.pairs for c in b.constraints}

    def test_density_zero_no_constraints(self):
        network = random_network(5, 3, 0.0, 0.5, seed=0)
        assert network.constraints == ()

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_planted_solution_is_solution(self, seed):
        import random as pyrandom

        network = random_network(
            6, 4, density=0.8, tightness=0.6, seed=seed, plant_solution=True
        )
        # Reconstruct the planted assignment the generator used.
        rng = pyrandom.Random(seed)
        planted = {f"x{i}": rng.randrange(4) for i in range(6)}
        assert network.is_solution(planted)

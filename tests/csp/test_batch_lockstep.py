"""Lockstep batch min-conflicts: finished chains cost nothing.

The numpy batch advances every chain one step per round.  A bugfix
made the per-round gather skip rows of chains that already finished
(found a solution or exhausted their budget): on mixed-length chain
sets the scan cost drops while the *walks themselves are untouched* --
every chain still produces byte-identical assignments and effort
counters to a standalone single-seed run.
:func:`repro.csp.vectorized.last_batch_diagnostics` exposes the row
accounting this suite pins down.
"""

import time

import pytest

pytest.importorskip("numpy")

from repro.csp.minconflicts import MinConflictsSolver
from repro.csp.random_networks import random_network
from repro.csp.vectorized import (
    ENGINE_BITSET,
    ENGINE_NUMPY,
    batch_min_conflicts,
    last_batch_diagnostics,
)

#: Loose network: some seeds converge in a handful of steps, others
#: wander much longer -- exactly the mixed-length regime.
NETWORK = random_network(12, 4, 0.4, 0.25, seed=2)
SEEDS = list(range(8))
BUDGETS = {"max_steps": 200, "max_restarts": 3}


def test_chains_match_standalone_runs():
    batch = batch_min_conflicts(
        NETWORK, SEEDS, engine=ENGINE_NUMPY, **BUDGETS
    )
    for seed, result in zip(SEEDS, batch):
        solo = MinConflictsSolver(
            seed=seed, engine=ENGINE_BITSET, **BUDGETS
        ).solve(NETWORK)
        assert result.assignment == solo.assignment
        assert result.stats.nodes == solo.stats.nodes
        assert result.stats.restarts == solo.stats.restarts
        assert (
            result.stats.consistency_checks == solo.stats.consistency_checks
        )


def test_finished_rows_are_skipped():
    batch_min_conflicts(NETWORK, SEEDS, engine=ENGINE_NUMPY, **BUDGETS)
    diag = last_batch_diagnostics()
    assert diag["chains"] == len(SEEDS)
    assert diag["rounds"] > 0
    # Chains finish at different rounds, so the gather must touch
    # strictly fewer rows than the dense rounds x chains plane.
    assert diag["rows_scanned"] < diag["rounds"] * diag["chains"]


def test_single_chain_scans_every_round():
    batch_min_conflicts(NETWORK, [3], engine=ENGINE_NUMPY, **BUDGETS)
    diag = last_batch_diagnostics()
    assert diag["chains"] == 1
    assert diag["rows_scanned"] == diag["rounds"]


def test_deadline_cuts_the_batch_short():
    hard = random_network(
        30, 6, 0.4, 0.5, seed=4, plant_solution=False
    )
    start = time.perf_counter()
    results = batch_min_conflicts(
        hard,
        SEEDS,
        max_steps=1_000_000,
        max_restarts=1_000,
        engine=ENGINE_NUMPY,
        deadline_at=time.monotonic() + 0.2,
    )
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0
    assert all(result.assignment is None for result in results)

"""Native-kernel build cache and compilerless degradation.

The native tier must never make a host worse: a machine without a C
compiler (and without a pre-built cache) keeps solving on the numpy or
bitset engines.  The contract under test:

* ``engine="auto"`` and the ``REPRO_CSP_ENGINE=native`` env override
  silently skip the native rung (the override logs **one** warning per
  process -- the warn-once seam -- while every degraded call is still
  counted through ``repro_engine_degradations_total``);
* an *explicit* ``engine="native"`` raises instead of degrading (an
  impossible explicit request is a bug at the call site, not a
  fleet-rollout condition);
* a corrupt or truncated cached ``.so`` is deleted and recompiled
  once, and the rebuilt library is served from cache thereafter.

Compile-needing tests are skipped on compilerless hosts; the
degradation tests run everywhere (they fake the compilerless state by
pointing the loader at an empty cache with no compiler on PATH).
"""

import ctypes
import logging

import pytest

from repro.csp import vectorized
from repro.csp.compiled import compile_network
from repro.csp.native import build as native_build
from repro.csp.random_networks import random_network
from repro.csp.vectorized import ENGINE_ENV, resolve_engine
from repro.obs import metrics


@pytest.fixture
def kernel():
    return compile_network(random_network(6, 4, 0.5, 0.3, seed=3))


@pytest.fixture(autouse=True)
def _fresh_native_state(monkeypatch):
    """Isolate each test's loader memo, warn-once set and env."""
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    native_build.reset_cache()
    vectorized._DEGRADATIONS_WARNED.clear()
    yield
    native_build.reset_cache()
    vectorized._DEGRADATIONS_WARNED.clear()
    metrics.set_enabled(False)


@pytest.fixture
def compilerless(monkeypatch, tmp_path):
    """No compiler, no cached build: the native tier cannot come up."""
    monkeypatch.setenv(native_build.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.setenv("PATH", str(tmp_path / "empty-bin"))
    monkeypatch.delenv(native_build.CC_ENV, raising=False)


class TestCompilerlessDegradation:
    def test_usable_is_false_and_memoized(self, compilerless):
        assert not native_build.usable()
        # The failed outcome is memoized: a second probe is cheap and
        # still False (no half-initialized state).
        assert not native_build.usable()

    def test_auto_skips_the_native_rung(self, compilerless, kernel):
        resolved = resolve_engine("auto", kernel)
        assert resolved in ("numpy", "bitset")

    def test_explicit_native_raises(self, compilerless, kernel):
        with pytest.raises(RuntimeError, match="native"):
            resolve_engine("native", kernel)

    def test_env_override_degrades_with_one_warning(
        self, compilerless, kernel, monkeypatch, caplog
    ):
        monkeypatch.setenv(ENGINE_ENV, "native")
        registry = metrics.MetricsRegistry()
        previous = metrics.set_registry(registry)
        metrics.set_enabled(True)
        try:
            with caplog.at_level(logging.WARNING, logger="repro.csp.vectorized"):
                for _ in range(4):
                    resolved = resolve_engine("auto", kernel)
                    assert resolved in ("numpy", "bitset")
        finally:
            metrics.set_enabled(False)
            metrics.set_registry(previous)
        warnings = [
            record
            for record in caplog.records
            if "native" in record.getMessage()
        ]
        assert len(warnings) == 1, "the degradation must be logged exactly once"
        rows = [
            row
            for row in registry.snapshot()["metrics"]
            if row["name"] == "repro_engine_degradations_total"
            and dict(row["labels"]) == {"reason": "native-unusable"}
        ]
        assert len(rows) == 1
        assert rows[0]["value"] == 4

    def test_env_override_degrades_to_bitset_without_numpy(
        self, compilerless, kernel, monkeypatch
    ):
        monkeypatch.setenv(ENGINE_ENV, "native")
        monkeypatch.setattr(vectorized, "np", None)
        assert resolve_engine("auto", kernel) == "bitset"

    def test_solvers_still_run(self, compilerless, kernel):
        from repro.csp.enhanced import EnhancedSolver

        result = EnhancedSolver(seed=1).solve(kernel)
        assert result.complete


@pytest.mark.skipif(
    not native_build.compiler_available(), reason="needs a C compiler"
)
class TestBuildCache:
    def test_corrupt_cached_library_is_recompiled(self, monkeypatch, tmp_path):
        monkeypatch.setenv(native_build.CACHE_DIR_ENV, str(tmp_path))
        target = native_build.library_path()
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(b"definitely not ELF")
        before = native_build.build_stats()
        lib = native_build.load_library()
        assert isinstance(lib, ctypes.CDLL)
        after = native_build.build_stats()
        assert after["cache_misses"] == before["cache_misses"] + 1
        assert after["compile_seconds"] > before["compile_seconds"]
        # The corrupt file was replaced by a working build...
        assert target.exists()
        # ...which a fresh loader serves as a cache hit, no recompile.
        native_build.reset_cache()
        native_build.load_library()
        final = native_build.build_stats()
        assert final["cache_hits"] == after["cache_hits"] + 1
        assert final["compile_seconds"] == after["compile_seconds"]

    def test_library_path_is_source_keyed(self):
        path = native_build.library_path()
        assert path.name.startswith("repro_kernel-")
        assert path.suffix == ".so"

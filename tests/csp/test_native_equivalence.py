"""Property-based equivalence: native C engine vs bitset engine.

The bitset kernel (PR 2) defines the solver semantics; the compiled C
kernel (:mod:`repro.csp.native`) is only allowed to make the same
search cheaper.  Over random networks this suite asserts, for every
solver and for AC-3, that the two engines agree **byte for byte**:
same assignments, same UNSAT proofs, same pruned domains, and the same
effort counters (nodes, backtracks, backjumps, consistency checks,
restarts) -- which also pins the RNG streams, since a diverging stream
immediately diverges the counters (the C kernel carries its own
MT19937 replicating CPython's ``random.Random`` exactly).

Mirrors ``test_vectorized_equivalence.py`` one tier down the ladder:
that suite ties the numpy planes to the bitset kernel, this one ties
the shared library to it.  The third cross-check (numpy vs native) is
implied by transitivity but spot-checked here anyway when numpy is
installed, so a host with all three tiers pins the full triangle.
"""

import pytest

from repro.csp.native import build as native_build

if not native_build.usable():  # pragma: no cover - compilerless host
    pytest.skip(
        "native kernel unavailable (no C compiler and no cached build)",
        allow_module_level=True,
    )

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.arc_consistency import ac3
from repro.csp.backjumping import ConflictDirectedSolver
from repro.csp.backtracking import BacktrackingSolver
from repro.csp.compiled import compile_network
from repro.csp.enhanced import EnhancedSolver, EnhancementConfig
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.minconflicts import MinConflictsSolver
from repro.csp.random_networks import random_network
from repro.csp.vectorized import batch_min_conflicts, numpy_available

#: scheme name -> (seed, engine) -> solver; every systematic scheme.
ENGINE_SCHEMES = {
    "base": lambda seed, engine: BacktrackingSolver(seed=seed, engine=engine),
    "enhanced": lambda seed, engine: EnhancedSolver(seed=seed, engine=engine),
    "cbj": lambda seed, engine: ConflictDirectedSolver(seed=seed, engine=engine),
    "forward-checking": lambda seed, engine: ForwardCheckingSolver(
        seed=seed, engine=engine
    ),
    "min-conflicts": lambda seed, engine: MinConflictsSolver(
        seed=seed, max_steps=150, max_restarts=2, engine=engine
    ),
}


@st.composite
def small_networks(draw):
    """Random networks spanning loose, tight, SAT and UNSAT regimes."""
    variables = draw(st.integers(2, 6))
    domain = draw(st.integers(2, 5))
    density = draw(st.floats(0.2, 1.0))
    tightness = draw(st.floats(0.0, 0.7))
    seed = draw(st.integers(0, 10_000))
    plant = draw(st.booleans())
    return random_network(
        variables, domain, density, tightness, seed=seed, plant_solution=plant
    )


def counters(result):
    stats = result.stats.as_dict()
    stats.pop("time_seconds")  # wall clock is the one legitimate delta
    return stats


@given(small_networks(), st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_engines_agree_on_every_scheme(network, seed):
    """Assignment, completeness and all counters match per scheme."""
    kernel = compile_network(network)
    for name, make in ENGINE_SCHEMES.items():
        bitset = make(seed, "bitset").solve(kernel)
        native = make(seed, "native").solve(kernel)
        assert bitset.assignment == native.assignment, name
        assert bitset.complete == native.complete, name
        assert counters(bitset) == counters(native), name
        if native.satisfiable:
            assert network.is_solution(native.assignment), name


@given(small_networks(), st.booleans(), st.booleans())
@settings(max_examples=25, deadline=None)
def test_engines_agree_on_ordering_ablations(network, var_on, val_on):
    """Each enhancement toggle individually takes the same decisions."""
    kernel = compile_network(network)
    config = EnhancementConfig(var_on, val_on, backjumping=True)
    bitset = EnhancedSolver(config, seed=2, engine="bitset").solve(kernel)
    native = EnhancedSolver(config, seed=2, engine="native").solve(kernel)
    assert bitset.assignment == native.assignment
    assert counters(bitset) == counters(native)


@given(small_networks())
@settings(max_examples=30, deadline=None)
def test_engines_agree_on_ac3(network):
    """Consistency verdict, pruned domains and revision/removal counts."""
    kernel = compile_network(network)
    bitset = ac3(kernel, engine="bitset")
    native = ac3(kernel, engine="native")
    assert bitset.consistent == native.consistent
    assert bitset.domains == native.domains
    assert bitset.revisions == native.revisions
    assert bitset.removed == native.removed


@given(small_networks(), st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_batched_chains_match_sequential_solves(network, chain_count):
    """Each native chain is byte-identical to its standalone bitset run."""
    kernel = compile_network(network)
    seeds = [7 * index + 1 for index in range(chain_count)]
    batched = batch_min_conflicts(
        kernel, seeds, max_steps=120, max_restarts=2, engine="native"
    )
    assert len(batched) == chain_count
    for seed, result in zip(seeds, batched):
        standalone = MinConflictsSolver(
            seed=seed, max_steps=120, max_restarts=2, engine="bitset"
        ).solve(kernel)
        assert result.assignment == standalone.assignment
        assert result.complete == standalone.complete
        assert counters(result) == counters(standalone)
        if result.satisfiable:
            assert network.is_solution(result.assignment)


@given(small_networks(), st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_three_engine_triangle(network, seed):
    """With all three tiers present the full triangle agrees."""
    if not numpy_available():  # pragma: no cover - numpy-free host
        pytest.skip("numpy tier absent; the pairwise suites cover the rest")
    kernel = compile_network(network)
    runs = {
        engine: EnhancedSolver(seed=seed, engine=engine).solve(kernel)
        for engine in ("bitset", "numpy", "native")
    }
    reference = runs["bitset"]
    for engine, run in runs.items():
        assert run.assignment == reference.assignment, engine
        assert run.complete == reference.complete, engine
        assert counters(run) == counters(reference), engine


def test_forward_checking_budget_cutoff_matches():
    """A node budget cuts both engines at the same node with the same
    counters (the cutoff unwinds without restoring domains in Python;
    the C search replicates that observable too)."""
    network = random_network(8, 4, 0.6, 0.45, seed=13)
    for budget in (1, 3, 17, 1000):
        bitset = ForwardCheckingSolver(engine="bitset", max_nodes=budget).solve(
            network
        )
        native = ForwardCheckingSolver(engine="native", max_nodes=budget).solve(
            network
        )
        assert bitset.assignment == native.assignment, budget
        assert bitset.complete == native.complete, budget
        assert counters(bitset) == counters(native), budget

"""Unit tests of the vectorized kernel: planes, sharing, resolution.

The byte-for-byte solver equivalence lives in
``test_vectorized_equivalence.py``; this module covers the kernel
mechanics themselves -- plane construction, engine resolution rules,
shared-memory publish/attach, pickle hygiene -- plus the AC-3
pending-set regression and the ``iter_bits`` chunked extraction.
"""

import pickle

import pytest

np = pytest.importorskip("numpy")

from repro.bench import benchmark_build_options, build_benchmark
from repro.csp.arc_consistency import ac3
from repro.csp.compiled import compile_network, iter_bits
from repro.csp.network import ConstraintNetwork
from repro.csp.random_networks import random_network
from repro.csp import vectorized
from repro.csp.vectorized import (
    AUTO_MIN_SUPPORT_CELLS,
    ENGINE_ENV,
    as_vectorized,
    attach_shared,
    batch_min_conflicts,
    build_vectorized,
    ensure_shared_kernel,
    export_shared,
    resolve_engine,
    shared_segment_name,
    support_cells,
    unlink_shared,
)
from repro.opt.network_builder import build_layout_network


@pytest.fixture
def kernel():
    return compile_network(
        random_network(5, 4, density=0.9, tightness=0.4, seed=11)
    )


@pytest.fixture
def table1_kernel():
    program = build_benchmark("Med-Im04")
    return build_layout_network(program, benchmark_build_options()).kernel()


# -- plane construction ---------------------------------------------------


def test_planes_reproduce_every_support_bit(kernel):
    vec = build_vectorized(kernel)
    for (i, j), masks in kernel.supports.items():
        slot = vec.slot_of[(i, j)]
        matrix = vec.support_matrix(i, slot)
        for a, mask in enumerate(masks):
            for b in range(kernel.domain_size(j)):
                assert bool(matrix[a, b]) == kernel.allows(i, a, j, b)
    # Padded tensor slots beyond the real degree stay all-False.
    for v in range(vec.variable_count):
        for d in range(vec.degree_list[v], vec.max_degree):
            assert not vec.support_tensor[v, d].any()


def test_lcv_counts_are_support_popcounts(kernel):
    vec = build_vectorized(kernel)
    for (i, j), masks in kernel.supports.items():
        slot = vec.slot_of[(i, j)]
        for a, mask in enumerate(masks):
            assert vec.lcv_counts[i, slot, a] == mask.bit_count()


def test_as_vectorized_caches_on_the_kernel(kernel):
    first = as_vectorized(kernel)
    assert as_vectorized(kernel) is first


def test_empty_network_builds_and_solves():
    kernel = compile_network(ConstraintNetwork())
    vec = build_vectorized(kernel)
    assert vec.variable_count == 0
    results = batch_min_conflicts(kernel, [3], max_steps=5, engine="numpy")
    assert results[0].assignment == {}


# -- engine resolution ----------------------------------------------------


def test_resolve_engine_rejects_unknown_spec(kernel):
    with pytest.raises(ValueError):
        resolve_engine("gpu", kernel)


def test_resolve_engine_explicit_choices(kernel):
    assert resolve_engine("bitset", kernel) == "bitset"
    assert resolve_engine("numpy", kernel) == "numpy"


def test_resolve_engine_auto_uses_size_threshold(
    kernel, table1_kernel, monkeypatch
):
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    # Pin the native tier off: this test exercises the numpy/bitset
    # rungs of the ladder, which only decide when native is unusable.
    monkeypatch.setattr(vectorized, "_native_usable", lambda: False)
    tiny = compile_network(random_network(2, 2, 0.5, 0.3, seed=1))
    assert support_cells(tiny) < AUTO_MIN_SUPPORT_CELLS
    assert resolve_engine("auto", tiny) == "bitset"
    assert support_cells(table1_kernel) >= AUTO_MIN_SUPPORT_CELLS
    assert resolve_engine("auto", table1_kernel) == "numpy"


def test_resolve_engine_auto_prefers_native(table1_kernel, monkeypatch):
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    monkeypatch.setattr(vectorized, "_native_usable", lambda: True)
    tiny = compile_network(random_network(2, 2, 0.5, 0.3, seed=1))
    assert support_cells(tiny) < vectorized.NATIVE_MIN_SUPPORT_CELLS
    assert resolve_engine("auto", tiny) == "bitset"
    assert support_cells(table1_kernel) >= vectorized.NATIVE_MIN_SUPPORT_CELLS
    assert resolve_engine("auto", table1_kernel) == "native"


def test_resolve_engine_env_override(kernel, monkeypatch):
    monkeypatch.setenv(ENGINE_ENV, "bitset")
    assert resolve_engine("auto", kernel) == "bitset"
    monkeypatch.setenv(ENGINE_ENV, "numpy")
    assert resolve_engine("auto", kernel) == "numpy"
    # The explicit argument is not overridden by the environment.
    assert resolve_engine("bitset", kernel) == "bitset"


def test_resolve_engine_without_numpy(kernel, monkeypatch):
    monkeypatch.setattr(vectorized, "np", None)
    monkeypatch.setattr(vectorized, "_native_usable", lambda: False)
    assert resolve_engine("auto", kernel) == "bitset"
    with pytest.raises(RuntimeError):
        resolve_engine("numpy", kernel)
    # The env override degrades instead of raising.
    monkeypatch.setenv(ENGINE_ENV, "numpy")
    assert resolve_engine("auto", kernel) == "bitset"


# -- pickling -------------------------------------------------------------


def test_kernel_pickle_excludes_vectorized_planes(kernel):
    as_vectorized(kernel)
    assert getattr(kernel, "_vector_cache", None) is not None
    clone = pickle.loads(pickle.dumps(kernel))
    assert getattr(clone, "_vector_cache", None) is None
    assert clone.names == kernel.names
    assert clone.supports == kernel.supports
    # And the slim pickle stays slim: planes are bigger than the rest.
    assert len(pickle.dumps(kernel)) < as_vectorized(kernel).nbytes + 20_000


# -- shared-memory sharing ------------------------------------------------


def test_shared_export_attach_round_trip(kernel):
    key = "test-rt-fp"
    unlink_shared(key)
    vec = as_vectorized(kernel)
    try:
        name = export_shared(vec, key)
        assert name == shared_segment_name(key)
        attached = attach_shared(key)
        assert attached is not None
        assert attached.shared
        for plane, array in vec.planes().items():
            np.testing.assert_array_equal(array, getattr(attached, plane))
            assert not getattr(attached, plane).flags.writeable
        # Second export loses the create race and reports so.
        assert export_shared(vec, key) is None
    finally:
        assert unlink_shared(key)
    assert attach_shared(key) is None


def test_attach_rejects_wrong_key(kernel):
    key = "test-key-a"
    unlink_shared(key)
    try:
        export_shared(as_vectorized(kernel), key)
        assert attach_shared("test-key-b") is None
    finally:
        unlink_shared(key)


def test_ensure_shared_kernel_sources(kernel):
    key = "test-ensure-fp"
    unlink_shared(key)
    try:
        # First call publishes (planes not yet cached on a twin).
        twin = pickle.loads(pickle.dumps(kernel))
        assert ensure_shared_kernel(twin, key) == "published"
        # A kernel that already has planes does nothing.
        assert ensure_shared_kernel(twin, key) == "cached"
        # A fresh process-local twin attaches the published planes.
        other = pickle.loads(pickle.dumps(kernel))
        assert ensure_shared_kernel(other, key) == "attached"
        assert other._vector_cache.shared
    finally:
        unlink_shared(key)


def test_ensure_shared_kernel_reclaims_stale_segment(kernel):
    """A publisher killed mid-write must not wedge its fingerprint."""
    from multiprocessing import shared_memory

    key = "test-stale-fp"
    unlink_shared(key)
    # Simulate a dead publisher: a named segment whose magic header
    # never arrives (all zeroes).
    stale = shared_memory.SharedMemory(
        name=shared_segment_name(key), create=True, size=4096
    )
    vectorized._untrack(stale)  # the reclaim below owns the unlink
    stale.close()
    try:
        assert attach_shared(key, timeout=0.0) is None
        twin = pickle.loads(pickle.dumps(kernel))
        assert ensure_shared_kernel(twin, key) == "published"
        other = pickle.loads(pickle.dumps(kernel))
        assert ensure_shared_kernel(other, key) == "attached"
    finally:
        unlink_shared(key)


def test_shared_attached_kernel_solves_identically(kernel):
    key = "test-solve-fp"
    unlink_shared(key)
    try:
        ensure_shared_kernel(kernel, key)
        twin = pickle.loads(pickle.dumps(kernel))
        assert ensure_shared_kernel(twin, key) == "attached"
        local = batch_min_conflicts(kernel, [1, 2], max_steps=60, engine="numpy")
        shared = batch_min_conflicts(twin, [1, 2], max_steps=60, engine="numpy")
        for mine, theirs in zip(local, shared):
            assert mine.assignment == theirs.assignment
            assert mine.stats.nodes == theirs.stats.nodes
    finally:
        unlink_shared(key)


# -- AC-3 pending-set regression (Table 1 network) ------------------------


def _ac3_with_duplicate_queue(kernel):
    """The pre-fix AC-3 loop: arcs re-enqueued while already pending."""
    from collections import deque

    masks = list(kernel.full_masks)
    queue = deque()
    for first, second in kernel.pairs:
        queue.append((first, second))
        queue.append((second, first))
    revisions = 0
    while queue:
        target, source = queue.popleft()
        revisions += 1
        support = kernel.supports[(target, source)]
        source_mask = masks[source]
        surviving = masks[target]
        pruned_here = False
        for value in iter_bits(masks[target]):
            if not support[value] & source_mask:
                surviving ^= 1 << value
                pruned_here = True
        masks[target] = surviving
        if not surviving:
            return revisions, masks, False
        if pruned_here:
            for neighbor in kernel.neighbors[target]:
                if neighbor != source:
                    queue.append((neighbor, target))
    return revisions, masks, True


def test_ac3_pending_set_cuts_revisions_on_table1_network(table1_kernel):
    duplicated_revisions, masks, consistent = _ac3_with_duplicate_queue(
        table1_kernel
    )
    result = ac3(table1_kernel, engine="bitset")
    assert result.consistent == consistent
    # Same fixpoint...
    for i in range(table1_kernel.variable_count):
        expected = tuple(
            table1_kernel.domains[i][value] for value in iter_bits(masks[i])
        )
        assert result.domains[table1_kernel.names[i]] == expected
    # ...for strictly fewer revisions than the duplicating queue.
    assert result.revisions < duplicated_revisions


# -- iter_bits ------------------------------------------------------------


def test_iter_bits_handles_wide_sparse_masks():
    positions = [0, 1, 62, 63, 64, 65, 126, 200, 1000, 4095]
    mask = sum(1 << p for p in positions)
    assert list(iter_bits(mask)) == positions
    assert list(iter_bits(0)) == []
    assert list(iter_bits(1)) == [0]
    dense = (1 << 300) - 1
    assert list(iter_bits(dense)) == list(range(300))

"""Focused tests for engine heuristics and backjumping behaviour."""

import pytest

from repro.csp.compiled import compile_network
from repro.csp.engine import (
    EngineConfig,
    JUMP_CHRONOLOGICAL,
    JUMP_CONFLICT,
    JUMP_GRAPH,
    SearchEngine,
)
from repro.csp.enhanced import EnhancedSolver, EnhancementConfig
from repro.csp.network import ConstraintNetwork


def chain_network(length: int, domain: int = 3) -> ConstraintNetwork:
    """x0 - x1 - ... - x{n-1} equality chain (satisfiable)."""
    network = ConstraintNetwork()
    values = list(range(domain))
    for index in range(length):
        network.add_variable(f"x{index}", values)
    equal = [(v, v) for v in values]
    for index in range(length - 1):
        network.add_constraint(f"x{index}", f"x{index + 1}", equal)
    return network


def backjump_showcase_network() -> ConstraintNetwork:
    """The Figure 3 situation: the culprit for a dead end at the last
    variable is not the chronologically previous variable.

    ``late`` conflicts only with ``early``; ``mid1`` and ``mid2`` are
    connected to nothing relevant.  With the instantiation order
    early, mid1, mid2, late, a chronological backtracker re-enumerates
    mid2 and mid1 pointlessly; a backjumper returns straight to early.
    """
    network = ConstraintNetwork()
    network.add_variable("early", [0, 1])
    network.add_variable("mid1", [0, 1, 2])
    network.add_variable("mid2", [0, 1, 2])
    network.add_variable("late", [0, 1])
    # late agrees only with early = 1.
    network.add_constraint("early", "late", [(1, 0), (1, 1)])
    # mid variables unconstrained w.r.t. everything else.
    return network


class TestEngineConfig:
    def test_unknown_jump_mode_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(jump_mode="teleport")

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(max_nodes=0)


class TestBackjumping:
    def test_backjumper_skips_innocent_variables(self):
        """Graph-based backjumping must do strictly less work than
        chronological backtracking on the showcase network when the
        static order instantiates early=0 first."""
        network = backjump_showcase_network()
        chronological = SearchEngine(
            EngineConfig(jump_mode=JUMP_CHRONOLOGICAL, seed=0)
        ).solve(network)
        jumping = SearchEngine(
            EngineConfig(jump_mode=JUMP_GRAPH, seed=0)
        ).solve(network)
        assert chronological.satisfiable and jumping.satisfiable
        # Same seed means the same (random) variable/value orders, so
        # the node difference is purely the jump rule.
        assert jumping.stats.nodes <= chronological.stats.nodes

    def test_backjumps_counted(self):
        network = backjump_showcase_network()
        # Force the bad order deterministically by searching a few seeds
        # until a run actually backjumps.
        for seed in range(30):
            result = SearchEngine(
                EngineConfig(jump_mode=JUMP_GRAPH, seed=seed)
            ).solve(network)
            assert result.satisfiable
            if result.stats.backjumps > 0:
                return
        pytest.skip("no seed produced a backjump on this tiny network")

    def test_conflict_directed_never_worse_than_graph(self):
        network = backjump_showcase_network()
        for seed in range(10):
            graph = SearchEngine(
                EngineConfig(jump_mode=JUMP_GRAPH, seed=seed)
            ).solve(network)
            conflict = SearchEngine(
                EngineConfig(jump_mode=JUMP_CONFLICT, seed=seed)
            ).solve(network)
            assert conflict.stats.nodes <= graph.stats.nodes


class TestVariableOrdering:
    def test_most_constraining_picks_hub(self):
        """On a star network the hub is chosen first."""
        network = ConstraintNetwork()
        network.add_variable("hub", [0, 1])
        for leaf in range(4):
            network.add_variable(f"leaf{leaf}", [0, 1])
            network.add_constraint("hub", f"leaf{leaf}", [(0, 0), (1, 1)])
        engine = SearchEngine(EngineConfig(variable_ordering=True))
        kernel = compile_network(network)
        chosen = engine._select_variable(kernel, [None] * kernel.variable_count, None)
        assert kernel.names[chosen] == "hub"

    def test_deterministic_tie_break(self):
        network = chain_network(3)
        engine = SearchEngine(EngineConfig(variable_ordering=True))
        kernel = compile_network(network)
        unassigned = [None] * kernel.variable_count
        first = engine._select_variable(kernel, unassigned, None)
        second = engine._select_variable(kernel, unassigned, None)
        assert kernel.names[first] == kernel.names[second] == "x1"  # degree 2


class TestValueOrdering:
    def test_least_constraining_prefers_supported_value(self):
        """A value supported by the neighbor's domain is tried before a
        value that wipes the neighbor out."""
        network = ConstraintNetwork()
        network.add_variable("x", [0, 1])
        network.add_variable("y", [0, 1, 2])
        # x=1 leaves y three options; x=0 leaves none.
        network.add_constraint(
            "x", "y", [(1, 0), (1, 1), (1, 2)]
        )
        engine = SearchEngine(EngineConfig(value_ordering=True))
        from repro.csp.stats import SolverStats

        kernel = compile_network(network)
        x = kernel.index_of["x"]
        ordered = engine._order_values(
            kernel, x, [None] * kernel.variable_count, None, SolverStats()
        )
        assert [kernel.domains[x][value] for value in ordered] == [1, 0]


class TestEnhancementConfigLabels:
    def test_labels(self):
        assert EnhancementConfig.all_off().label() == "base"
        assert EnhancementConfig.all_on().label() == "var+val+bj"
        assert EnhancementConfig(True, False, False).label() == "var"

    def test_solver_reports_config(self):
        solver = EnhancedSolver(EnhancementConfig(True, True, False))
        assert solver.config.backjumping is False


class TestChainScaling:
    def test_long_chain_solved_quickly_by_enhanced(self):
        network = chain_network(40, domain=4)
        result = EnhancedSolver().solve(network)
        assert result.satisfiable
        # Degree + least-constraining-value should walk the chain with
        # almost no backtracking.
        assert result.stats.backtracks + result.stats.backjumps <= 40

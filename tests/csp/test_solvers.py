"""Cross-solver tests: base, enhanced, CBJ, forward checking, min-conflicts.

Every systematic solver must agree on satisfiability and return actual
solutions; the paper's Section 4 remark "If a solution exists ... both
the base and enhanced schemes will find it" is tested literally, on the
paper's own example network and on random networks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.arc_consistency import ac3
from repro.csp.backjumping import ConflictDirectedSolver
from repro.csp.backtracking import BacktrackingSolver
from repro.csp.enhanced import EnhancedSolver, EnhancementConfig
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.minconflicts import MinConflictsSolver
from repro.csp.network import ConstraintNetwork
from repro.csp.random_networks import random_network
from tests.csp.test_network import paper_example_network

SYSTEMATIC_SOLVERS = [
    BacktrackingSolver(seed=3),
    EnhancedSolver(),
    EnhancedSolver(EnhancementConfig(True, False, False), seed=1),
    EnhancedSolver(EnhancementConfig(False, True, False), seed=1),
    EnhancedSolver(EnhancementConfig(False, False, True), seed=1),
    ConflictDirectedSolver(),
    ForwardCheckingSolver(),
]


def unsat_network() -> ConstraintNetwork:
    """A tiny unsatisfiable triangle: pairwise-different over 2 values."""
    network = ConstraintNetwork()
    for name in ("x", "y", "z"):
        network.add_variable(name, [0, 1])
    different = [(0, 1), (1, 0)]
    network.add_constraint("x", "y", different)
    network.add_constraint("y", "z", different)
    network.add_constraint("x", "z", different)
    return network


class TestOnPaperExample:
    @pytest.mark.parametrize(
        "solver", SYSTEMATIC_SOLVERS, ids=lambda s: type(s).__name__ + getattr(s, "name", "")
    )
    def test_finds_a_valid_solution(self, solver):
        network = paper_example_network()
        result = solver.solve(network)
        assert result.satisfiable
        assert network.is_solution(result.assignment)

    def test_min_conflicts_finds_solution(self):
        network = paper_example_network()
        result = MinConflictsSolver(seed=5).solve(network)
        assert result.satisfiable
        assert network.is_solution(result.assignment)

    def test_base_and_enhanced_may_differ(self):
        """Multiple solutions exist; solvers may pick different ones
        (the Table 3 observation) -- but both must be valid."""
        network = paper_example_network()
        base = BacktrackingSolver(seed=11).solve(network)
        enhanced = EnhancedSolver().solve(network)
        assert network.is_solution(base.assignment)
        assert network.is_solution(enhanced.assignment)


class TestOnUnsat:
    @pytest.mark.parametrize(
        "solver", SYSTEMATIC_SOLVERS, ids=lambda s: type(s).__name__ + getattr(s, "name", "")
    )
    def test_proves_unsat(self, solver):
        result = solver.solve(unsat_network())
        assert not result.satisfiable
        assert result.complete

    def test_min_conflicts_gives_up(self):
        result = MinConflictsSolver(seed=0, max_steps=50, max_restarts=2).solve(
            unsat_network()
        )
        assert not result.satisfiable
        assert not result.complete  # no proof


class TestStats:
    def test_nodes_counted(self):
        result = BacktrackingSolver(seed=0).solve(paper_example_network())
        assert result.stats.nodes >= 4  # at least one per variable

    def test_time_recorded(self):
        result = EnhancedSolver().solve(paper_example_network())
        assert result.stats.time_seconds >= 0.0

    def test_enhanced_beats_base_on_effort(self):
        """On a nontrivial satisfiable network the enhanced scheme
        needs no more (usually far fewer) search nodes."""
        network = random_network(14, 5, density=0.4, tightness=0.45, seed=7)
        base = BacktrackingSolver(seed=2).solve(network)
        enhanced = EnhancedSolver().solve(network)
        assert base.satisfiable and enhanced.satisfiable
        assert enhanced.stats.nodes <= base.stats.nodes

    def test_node_budget_reported_incomplete(self):
        network = random_network(16, 6, density=0.5, tightness=0.5, seed=3)
        result = BacktrackingSolver(seed=0, max_nodes=5).solve(network)
        assert not result.complete
        assert result.assignment is None


class TestRandomNetworks:
    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_all_systematic_solvers_agree(self, seed):
        """On arbitrary (planted-solution) random networks, every
        systematic solver finds a valid solution."""
        network = random_network(
            7, 4, density=0.5, tightness=0.4, seed=seed, plant_solution=True
        )
        for solver in SYSTEMATIC_SOLVERS:
            result = solver.solve(network)
            assert result.satisfiable, type(solver).__name__
            assert network.is_solution(result.assignment)

    @given(st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_satisfiability_agreement_without_planting(self, seed):
        """Without a planted solution the instance may be UNSAT; all
        systematic solvers must agree either way."""
        network = random_network(
            6, 3, density=0.7, tightness=0.5, seed=seed, plant_solution=False
        )
        verdicts = {
            type(solver).__name__: solver.solve(network).satisfiable
            for solver in SYSTEMATIC_SOLVERS
        }
        assert len(set(verdicts.values())) == 1, verdicts

    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_ac3_agrees_with_search(self, seed):
        """If AC-3 wipes out a domain the network is UNSAT; if search
        finds a solution, AC-3 must keep it arc-consistent."""
        network = random_network(
            6, 3, density=0.8, tightness=0.55, seed=seed, plant_solution=False
        )
        ac_result = ac3(network)
        search = EnhancedSolver().solve(network)
        if not ac_result.consistent:
            assert not search.satisfiable
        elif search.satisfiable:
            for variable, value in search.assignment.items():
                assert value in ac_result.domains[variable]

"""Property-based equivalence: compiled kernel vs legacy semantics.

The legacy objects (:class:`ConstraintNetwork` / ``BinaryConstraint``)
define what a network *means*; the compiled kernel is only allowed to
make the checks cheaper.  Over random networks this suite asserts, for
every scheme (base, enhanced, cbj, forward-checking, min-conflicts,
weighted):

* **satisfiability agreement** -- each scheme's verdict matches a
  brute-force reference solver that uses only the legacy
  ``BinaryConstraint.allows``;
* **assignment validity** -- every returned assignment passes the
  legacy :meth:`ConstraintNetwork.is_solution`;
* **entry-path equivalence** -- solving through the authoring network
  and through an explicitly compiled kernel produces the same
  assignment and the same effort counters;
* **consistency-check monotonicity** -- the ``consistency_checks``
  counter grows monotonically with the node budget (a capped run is a
  prefix of the uncapped run) and is reproducible across repeat runs.
"""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.backjumping import ConflictDirectedSolver
from repro.csp.backtracking import BacktrackingSolver
from repro.csp.compiled import compile_network
from repro.csp.enhanced import EnhancedSolver
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.minconflicts import MinConflictsSolver
from repro.csp.random_networks import random_network
from repro.csp.weighted import BranchAndBoundSolver, WeightedNetwork

#: scheme name -> seeded factory; every entry is a complete solver
#: except min-conflicts (handled separately: incomplete).
SYSTEMATIC_SCHEMES = {
    "base": lambda seed: BacktrackingSolver(seed=seed),
    "enhanced": lambda seed: EnhancedSolver(seed=seed),
    "cbj": lambda seed: ConflictDirectedSolver(seed=seed),
    "forward-checking": lambda seed: ForwardCheckingSolver(seed=seed),
}


@st.composite
def small_networks(draw):
    """Random networks small enough to brute-force as ground truth."""
    variables = draw(st.integers(2, 5))
    domain = draw(st.integers(2, 4))
    density = draw(st.floats(0.2, 1.0))
    tightness = draw(st.floats(0.0, 0.7))
    seed = draw(st.integers(0, 10_000))
    plant = draw(st.booleans())
    return random_network(
        variables, domain, density, tightness, seed=seed, plant_solution=plant
    )


def brute_force_satisfiable(network) -> bool:
    """Reference verdict using only the legacy allows()."""
    names = network.variables
    constraints = network.constraints
    for combo in product(*(network.domain(name) for name in names)):
        assignment = dict(zip(names, combo))
        if all(
            constraint.allows(
                constraint.first,
                assignment[constraint.first],
                assignment[constraint.second],
            )
            for constraint in constraints
        ):
            return True
    return False


@given(small_networks())
@settings(max_examples=40, deadline=None)
def test_systematic_schemes_agree_with_legacy_semantics(network):
    kernel = compile_network(network)
    expected = brute_force_satisfiable(network)
    for name, make in SYSTEMATIC_SCHEMES.items():
        result = make(0).solve(kernel)
        assert result.satisfiable == expected, name
        assert result.complete, name
        if result.satisfiable:
            assert network.is_solution(result.assignment), name


@given(small_networks())
@settings(max_examples=30, deadline=None)
def test_min_conflicts_agrees_with_legacy_semantics(network):
    expected = brute_force_satisfiable(network)
    result = MinConflictsSolver(seed=0, max_steps=400, max_restarts=3).solve(
        compile_network(network)
    )
    if not expected:
        assert not result.satisfiable  # incomplete, but never wrong
    if result.satisfiable:
        assert network.is_solution(result.assignment)


@given(small_networks())
@settings(max_examples=30, deadline=None)
def test_weighted_scheme_agrees_with_legacy_semantics(network):
    expected = brute_force_satisfiable(network)
    result = BranchAndBoundSolver().solve(WeightedNetwork(network))
    assert result.fully_satisfied == expected
    assert set(result.assignment) == set(network.variables)
    if expected:
        assert network.is_solution(result.assignment)
    # The kernel-direct entry point reaches the same optimum.
    compiled_result = BranchAndBoundSolver().solve_compiled(compile_network(network))
    assert compiled_result.assignment == result.assignment
    assert compiled_result.satisfied_weight == result.satisfied_weight
    assert compiled_result.optimal_weight == result.optimal_weight


@given(small_networks())
@settings(max_examples=25, deadline=None)
def test_network_and_kernel_entry_paths_are_identical(network):
    """solve(ConstraintNetwork) == solve(CompiledNetwork): assignment
    and every effort counter (time excluded) -- compilation changes the
    cost of a check, never how many the search performs."""
    kernel = compile_network(network)
    factories = dict(SYSTEMATIC_SCHEMES)
    factories["min-conflicts"] = lambda seed: MinConflictsSolver(
        seed=seed, max_steps=200, max_restarts=2
    )
    for name, make in factories.items():
        via_network = make(3).solve(network)
        via_kernel = make(3).solve(kernel)
        assert via_network.assignment == via_kernel.assignment, name
        network_stats = via_network.stats.as_dict()
        kernel_stats = via_kernel.stats.as_dict()
        network_stats.pop("time_seconds")
        kernel_stats.pop("time_seconds")
        assert network_stats == kernel_stats, name


@given(small_networks())
@settings(max_examples=25, deadline=None)
def test_consistency_checks_monotone_in_node_budget(network):
    """A budget-capped run is a prefix of the uncapped run, so the
    check counter must be monotone non-decreasing in the budget -- and
    exact reruns must reproduce it (no hash-order nondeterminism)."""
    kernel = compile_network(network)
    for scheme in ("base", "enhanced"):
        make = SYSTEMATIC_SCHEMES[scheme]
        full = make(1).solve(kernel)
        rerun = make(1).solve(kernel)
        assert rerun.stats.consistency_checks == full.stats.consistency_checks
        previous = 0
        budget = 1
        while budget < full.stats.nodes + 2:
            if scheme == "base":
                capped = BacktrackingSolver(seed=1, max_nodes=budget).solve(kernel)
            else:
                capped = EnhancedSolver(seed=1, max_nodes=budget).solve(kernel)
            assert capped.stats.consistency_checks >= previous
            assert capped.stats.consistency_checks <= full.stats.consistency_checks
            previous = capped.stats.consistency_checks
            budget *= 2

"""Tests for constraint-graph structure analysis and the dual encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.backtracking import BacktrackingSolver
from repro.csp.enhanced import EnhancedSolver
from repro.csp.network import ConstraintNetwork
from repro.csp.nonbinary import (
    DualEncoding,
    NaryConstraint,
    dual_encode,
    solve_nary,
)
from repro.csp.random_networks import random_network
from repro.csp.structure import (
    analyze_structure,
    connected_components,
    induced_width,
    is_tree,
    min_degree_ordering,
    solve_by_components,
)


def _chain(n: int, domain=3) -> ConstraintNetwork:
    network = ConstraintNetwork()
    equal = [(v, v) for v in range(domain)]
    for i in range(n):
        network.add_variable(f"x{i}", list(range(domain)))
    for i in range(n - 1):
        network.add_constraint(f"x{i}", f"x{i + 1}", equal)
    return network


def _two_islands() -> ConstraintNetwork:
    network = _chain(3)
    network.add_variable("y0", [0, 1])
    network.add_variable("y1", [0, 1])
    network.add_constraint("y0", "y1", [(0, 1), (1, 0)])
    return network


class TestComponents:
    def test_single_component(self):
        assert len(connected_components(_chain(4))) == 1

    def test_two_islands(self):
        components = connected_components(_two_islands())
        assert sorted(len(c) for c in components) == [2, 3]

    def test_isolated_variable(self):
        network = _chain(2)
        network.add_variable("lonely", [0])
        assert ("lonely",) in connected_components(network)


class TestTreeAndWidth:
    def test_chain_is_tree(self):
        assert is_tree(_chain(5))

    def test_triangle_is_not_tree(self):
        network = _chain(3)
        network.add_constraint("x0", "x2", [(v, v) for v in range(3)])
        assert not is_tree(network)

    def test_chain_width_is_one(self):
        assert induced_width(_chain(6)) == 1

    def test_triangle_width_is_two(self):
        network = _chain(3)
        network.add_constraint("x0", "x2", [(v, v) for v in range(3)])
        assert induced_width(network) == 2

    def test_ordering_is_permutation(self):
        network = _two_islands()
        order = min_degree_ordering(network)
        assert sorted(order) == sorted(network.variables)

    def test_analyze_structure(self):
        report = analyze_structure(_two_islands())
        assert report.variables == 5
        assert report.components == (3, 2)
        assert report.tree


class TestSolveByComponents:
    def test_solves_islands_independently(self):
        network = _two_islands()
        result = solve_by_components(network, lambda: EnhancedSolver())
        assert result.assignment is not None
        assert network.is_solution(result.assignment)

    def test_unsat_component_detected(self):
        network = _two_islands()
        # Append an unsatisfiable triangle as a third component.
        different = [(0, 1), (1, 0)]
        for name in ("z0", "z1", "z2"):
            network.add_variable(name, [0, 1])
        network.add_constraint("z0", "z1", different)
        network.add_constraint("z1", "z2", different)
        network.add_constraint("z0", "z2", different)
        result = solve_by_components(network, lambda: EnhancedSolver())
        assert result.assignment is None
        assert result.complete

    @given(st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_matches_monolithic_solver(self, seed):
        network = random_network(8, 3, density=0.25, tightness=0.4, seed=seed)
        split = solve_by_components(network, lambda: EnhancedSolver())
        mono = EnhancedSolver().solve(network)
        assert (split.assignment is not None) == (mono.assignment is not None)
        if split.assignment is not None:
            assert network.is_solution(split.assignment)


class TestNaryConstraint:
    def test_validation(self):
        with pytest.raises(ValueError):
            NaryConstraint(("a", "a"), frozenset({(0, 0)}))
        with pytest.raises(ValueError):
            NaryConstraint(("a", "b"), frozenset())
        with pytest.raises(ValueError):
            NaryConstraint(("a", "b"), frozenset({(0,)}))

    def test_allows(self):
        constraint = NaryConstraint(
            ("a", "b", "c"), frozenset({(0, 1, 2), (1, 1, 1)})
        )
        assert constraint.allows({"a": 0, "b": 1, "c": 2})
        assert not constraint.allows({"a": 0, "b": 0, "c": 2})


class TestDualEncoding:
    def _nest_constraints(self):
        """Two 'nests': one over (A, B, C), one over (B, C, D)."""
        nest1 = NaryConstraint(
            ("A", "B", "C"),
            frozenset({("r", "c", "d"), ("c", "r", "d")}),
        )
        nest2 = NaryConstraint(
            ("B", "C", "D"),
            frozenset({("c", "d", "r"), ("d", "d", "c")}),
        )
        return [nest1, nest2]

    def test_encode_shapes(self):
        encoding = dual_encode(self._nest_constraints())
        assert set(encoding.network.variables) == {"c0", "c1"}
        assert encoding.network.constraint_between("c0", "c1") is not None

    def test_solve_and_decode(self):
        constraints = self._nest_constraints()
        solution = solve_nary(constraints, EnhancedSolver())
        assert solution is not None
        for constraint in constraints:
            assert constraint.allows(solution)

    def test_decode_consistency(self):
        encoding = dual_encode(self._nest_constraints())
        decoded = encoding.decode(
            {"c0": ("r", "c", "d"), "c1": ("c", "d", "r")}
        )
        assert decoded == {"A": "r", "B": "c", "C": "d", "D": "r"}

    def test_disagreeing_dual_assignment_rejected(self):
        encoding = dual_encode(self._nest_constraints())
        with pytest.raises(ValueError):
            encoding.decode(
                {"c0": ("c", "r", "d"), "c1": ("c", "d", "r")}
            )

    def test_jointly_unsat_share_raises(self):
        first = NaryConstraint(("A", "B"), frozenset({(0, 0)}))
        second = NaryConstraint(("B", "C"), frozenset({(1, 1)}))
        with pytest.raises(ValueError):
            dual_encode([first, second])

    def test_solve_nary_unsat_returns_none(self):
        first = NaryConstraint(("A", "B"), frozenset({(0, 0)}))
        second = NaryConstraint(("B", "C"), frozenset({(1, 1)}))
        assert solve_nary([first, second], EnhancedSolver()) is None

    def test_disjoint_scopes_are_unconstrained(self):
        first = NaryConstraint(("A", "B"), frozenset({(0, 1)}))
        second = NaryConstraint(("C", "D"), frozenset({(2, 3)}))
        solution = solve_nary([first, second], BacktrackingSolver(seed=0))
        assert solution == {"A": 0, "B": 1, "C": 2, "D": 3}

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            dual_encode([])

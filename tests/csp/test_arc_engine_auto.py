"""Per-arc engine crossover in AC-3 (``engine="auto"``).

The numpy revision has a flat per-arc cost while the bitset revision
scales with the support size, so below
:data:`repro.csp.vectorized.AC3_ARC_CROSSOVER_CELLS` cells the bitset
loop wins even inside a numpy-resolved run.  ``ac3(engine="auto")``
therefore routes each arc to the cheaper representation and reports
the split in ``ArcConsistencyResult.arc_engines``.  The contract: the
routing is invisible in the answer (consistent flag, domains,
revision count all engine-independent) and disabled by an explicit
engine choice or the ``REPRO_CSP_ENGINE`` override.
"""

import random

import pytest

pytest.importorskip("numpy")

from repro.csp import vectorized
from repro.csp.arc_consistency import ac3
from repro.csp.network import ConstraintNetwork
from repro.csp.random_networks import random_network
from repro.csp.vectorized import (
    AC3_ARC_CROSSOVER_CELLS,
    ENGINE_AUTO,
    ENGINE_BITSET,
    ENGINE_ENV,
    ENGINE_NUMPY,
)


@pytest.fixture(autouse=True)
def _pin_native_off(monkeypatch):
    """The per-arc numpy/bitset mix only runs when ``auto`` resolves
    to numpy, so keep the native tier out of the ladder here (its
    whole-run AC-3 has no per-arc split to observe)."""
    monkeypatch.setattr(vectorized, "_native_usable", lambda: False)


def _small_domain_network():
    """Many variables, tiny domains: numpy-resolved, every arc below
    the crossover (4 x 4 = 16 cells << 900)."""
    return random_network(30, 4, 0.3, 0.3, seed=5)


def _wide_domain_network():
    """Few variables, wide domains: every arc above the crossover
    (40 x 40 = 1600 cells > 900)."""
    return random_network(6, 40, 0.8, 0.4, seed=9)


def _mixed_domain_network():
    """One wide hub constrained against narrow spokes: arcs on both
    sides of the crossover in a single run."""
    rng = random.Random(17)
    network = ConstraintNetwork()
    network.add_variable("hub", list(range(40)))
    network.add_variable("hub2", list(range(40)))
    # wide-wide arc: 40 x 40 = 1600 cells, above the crossover
    network.add_constraint(
        "hub",
        "hub2",
        [
            (a, b)
            for a in range(40)
            for b in range(40)
            if rng.random() > 0.3
        ],
    )
    for index in range(6):
        name = f"spoke{index}"
        network.add_variable(name, list(range(4)))
        pairs = [
            (h, s)
            for h in range(40)
            for s in range(4)
            if rng.random() > 0.3
        ]
        network.add_constraint("hub", name, pairs)
    # narrow-narrow arcs too
    for index in range(5):
        pairs = [
            (a, b)
            for a in range(4)
            for b in range(4)
            if rng.random() > 0.4
        ]
        network.add_constraint(f"spoke{index}", f"spoke{index + 1}", pairs)
    return network


NETWORKS = {
    "small": _small_domain_network,
    "wide": _wide_domain_network,
    "mixed": _mixed_domain_network,
}


class TestParity:
    @pytest.mark.parametrize("build", NETWORKS.values(), ids=NETWORKS.keys())
    def test_auto_matches_both_pure_engines(self, build):
        network = build()
        auto = ac3(network, engine=ENGINE_AUTO)
        bitset = ac3(network, engine=ENGINE_BITSET)
        numpy_run = ac3(network, engine=ENGINE_NUMPY)
        for pure in (bitset, numpy_run):
            assert auto.consistent == pure.consistent
            assert auto.revisions == pure.revisions
            if auto.consistent:
                assert auto.domains == pure.domains

    @pytest.mark.parametrize("build", NETWORKS.values(), ids=NETWORKS.keys())
    def test_arc_engine_totals_equal_revisions(self, build):
        result = ac3(build(), engine=ENGINE_AUTO)
        assert sum(result.arc_engines.values()) == result.revisions


class TestRouting:
    def test_small_domain_arcs_route_to_bitset(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        result = ac3(_small_domain_network(), engine=ENGINE_AUTO)
        # Every arc is far below the crossover: zero numpy revisions.
        assert result.arc_engines.get(ENGINE_NUMPY, 0) == 0
        assert result.arc_engines.get(ENGINE_BITSET, 0) == result.revisions

    def test_wide_domain_arcs_route_to_numpy(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        result = ac3(_wide_domain_network(), engine=ENGINE_AUTO)
        assert result.arc_engines.get(ENGINE_BITSET, 0) == 0
        assert result.arc_engines.get(ENGINE_NUMPY, 0) == result.revisions

    def test_mixed_network_uses_both(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        result = ac3(_mixed_domain_network(), engine=ENGINE_AUTO)
        assert result.arc_engines.get(ENGINE_BITSET, 0) > 0
        assert result.arc_engines.get(ENGINE_NUMPY, 0) > 0

    def test_env_override_disables_the_mix(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "numpy")
        result = ac3(_mixed_domain_network(), engine=ENGINE_AUTO)
        assert result.arc_engines.get(ENGINE_BITSET, 0) == 0

    def test_explicit_numpy_engine_is_pure(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        result = ac3(_mixed_domain_network(), engine=ENGINE_NUMPY)
        assert result.arc_engines.get(ENGINE_BITSET, 0) == 0

    def test_crossover_constant_is_sane(self):
        # The measured crossover sits between 16-cell arcs (bitset
        # ~10x faster) and 4096-cell arcs (numpy ~2.4x faster).
        assert 16 < AC3_ARC_CROSSOVER_CELLS < 4096

"""Space-splitting parallel search: determinism, stealing, streaming.

The split solver's contract is *byte-identity*: for any worker count
and any steal schedule, the returned assignment and the accounted
effort counters equal the serial
:class:`~repro.csp.forward_checking.ForwardCheckingSolver` run.  The
property test drives that contract over random networks spanning the
phase transition, with workers in {1, 2, 4} and *randomized* inline
completion/steal schedules (the `_InlineRunner` seam executes subtrees
in arbitrary orders without paying for processes); one test runs a
real 2-process pool end-to-end.
"""

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.compiled import compile_network, enumerate_solutions
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.random_networks import random_network
from repro.csp.splitsearch import (
    SEARCH_AUTO,
    SEARCH_ENV,
    SEARCH_SERIAL,
    SEARCH_SPLIT,
    SplitSearchSolver,
    _InlineRunner,
    default_split_workers,
    enumerate_solutions_parallel,
    resolve_search,
)


def _serial(network):
    return ForwardCheckingSolver().solve(network)


def _core(stats) -> tuple:
    """The counters the determinism contract covers."""
    return (stats.nodes, stats.backtracks, stats.consistency_checks)


def _split_solver(workers: int, schedule_seed: int | None = None, **kwargs):
    """An inline split solver with an optional randomized schedule."""
    if schedule_seed is not None:
        schedule_rng = random.Random(schedule_seed)
        kwargs.setdefault("steal_rng", random.Random(schedule_seed + 1))
        kwargs["runner_factory"] = lambda kernel, _: _InlineRunner(
            kernel, schedule_rng
        )
    else:
        kwargs.setdefault(
            "runner_factory", lambda kernel, _: _InlineRunner(kernel)
        )
    return SplitSearchSolver(workers=workers, search=SEARCH_SPLIT, **kwargs)


class TestResolveSearch:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SEARCH_ENV, "split")
        assert resolve_search(SEARCH_SERIAL) == SEARCH_SPLIT
        monkeypatch.setenv(SEARCH_ENV, "serial")
        assert resolve_search(SEARCH_SPLIT) == SEARCH_SERIAL

    def test_auto_is_not_overridden_to_itself(self, monkeypatch):
        monkeypatch.delenv(SEARCH_ENV, raising=False)
        assert resolve_search(SEARCH_AUTO) == SEARCH_AUTO

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPLIT_WORKERS", "3")
        assert default_split_workers() == 3

    def test_bad_search_rejected(self):
        with pytest.raises(ValueError):
            SplitSearchSolver(search="warp")


class TestByteIdentity:
    @pytest.mark.parametrize("tightness", [0.25, 0.45])
    @pytest.mark.parametrize("plant", [True, False])
    def test_matches_serial_forward_checking(self, tightness, plant):
        network = random_network(
            10, 4, 0.5, tightness, seed=7, plant_solution=plant
        )
        serial = _serial(network)
        solver = _split_solver(workers=4)
        try:
            result = solver.solve(network)
        finally:
            solver.close()
        assert result.assignment == serial.assignment
        assert result.complete == serial.complete
        assert _core(result.stats) == _core(serial.stats)

    def test_serial_mode_is_plain_forward_checking(self):
        network = random_network(8, 3, 0.6, 0.3, seed=3)
        serial = _serial(network)
        result = SplitSearchSolver(search=SEARCH_SERIAL).solve(network)
        assert result.assignment == serial.assignment
        assert _core(result.stats) == _core(serial.stats)
        assert result.stats.search == SEARCH_SERIAL
        assert result.stats.subtrees == 0

    def test_auto_stays_serial_on_easy_instances(self):
        network = random_network(6, 3, 0.5, 0.2, seed=1)
        result = SplitSearchSolver(search=SEARCH_AUTO).solve(network)
        assert result.stats.search == SEARCH_SERIAL

    def test_auto_escalates_past_the_serial_budget(self):
        network = random_network(
            24, 4, 0.4, 0.42, seed=11, plant_solution=False
        )
        serial = _serial(network)
        solver = SplitSearchSolver(
            search=SEARCH_AUTO,
            workers=2,
            serial_budget=64,
            runner_factory=lambda kernel, _: _InlineRunner(kernel),
        )
        try:
            result = solver.solve(network)
        finally:
            solver.close()
        if result.stats.search == SEARCH_SPLIT:
            # The escalated run still reproduces the serial answer and
            # bills the abandoned serial attempt as speculative effort.
            assert result.stats.speculative_nodes > 0
        assert result.assignment == serial.assignment
        assert _core(result.stats) == _core(serial.stats)

    def test_deadline_expiry_is_incomplete(self):
        network = random_network(
            40, 8, 0.2, 0.45, seed=5, plant_solution=False
        )
        solver = _split_solver(workers=2)
        solver.set_deadline(0.0)
        try:
            result = solver.solve(network)
        finally:
            solver.close()
        assert result.assignment is None
        assert not result.complete


class TestWorkStealing:
    def test_steals_are_counted_and_harmless(self):
        network = random_network(
            30, 6, 0.2, 0.45, seed=1, plant_solution=False
        )
        serial = _serial(network)
        # A randomized schedule makes some lane run dry while peers
        # are loaded, forcing steals.
        stolen = 0
        for schedule_seed in range(8):
            solver = _split_solver(workers=4, schedule_seed=schedule_seed)
            try:
                result = solver.solve(network)
            finally:
                solver.close()
            assert result.assignment == serial.assignment
            assert _core(result.stats) == _core(serial.stats)
            stolen += result.stats.steals
        assert stolen > 0


@st.composite
def transition_networks(draw):
    """Random networks straddling the SAT/UNSAT phase transition."""
    variables = draw(st.integers(6, 14))
    domain = draw(st.integers(3, 5))
    density = draw(st.floats(0.3, 0.8))
    tightness = draw(st.floats(0.2, 0.5))
    seed = draw(st.integers(0, 10_000))
    plant = draw(st.booleans())
    return random_network(
        variables, domain, density, tightness, seed=seed, plant_solution=plant
    )


class TestDeterminismProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        network=transition_networks(),
        workers=st.sampled_from([1, 2, 4]),
        schedule_seed=st.integers(0, 1_000),
    )
    def test_any_worker_count_and_steal_schedule(
        self, network, workers, schedule_seed
    ):
        serial = _serial(network)
        solver = _split_solver(workers=workers, schedule_seed=schedule_seed)
        try:
            result = solver.solve(network)
        finally:
            solver.close()
        assert result.assignment == serial.assignment
        assert result.complete == serial.complete
        assert _core(result.stats) == _core(serial.stats)


class TestStreamingEnumeration:
    def test_matches_serial_enumeration(self):
        network = random_network(9, 3, 0.5, 0.3, seed=23)
        kernel = compile_network(network)
        expected = enumerate_solutions(kernel, 12)
        streamed = list(enumerate_solutions_parallel(network, 12, workers=1))
        assert streamed == expected

    def test_limit_stops_the_stream(self):
        network = random_network(9, 3, 0.4, 0.2, seed=29)
        kernel = compile_network(network)
        expected = enumerate_solutions(kernel, 3)
        streamed = list(enumerate_solutions_parallel(network, 3, workers=1))
        assert streamed == expected
        assert len(streamed) <= 3

    def test_unsat_stream_is_empty(self):
        network = random_network(
            8, 3, 0.9, 0.6, seed=31, plant_solution=False
        )
        assert list(enumerate_solutions_parallel(network, 5, workers=1)) == []


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_POOL_TESTS") == "1",
    reason="process-pool tests disabled",
)
class TestRealPool:
    def test_two_process_pool_matches_serial(self):
        network = random_network(
            12, 4, 0.5, 0.4, seed=37, plant_solution=False
        )
        serial = _serial(network)
        solver = SplitSearchSolver(workers=2, search=SEARCH_SPLIT)
        try:
            result = solver.solve(network)
            assert result.assignment == serial.assignment
            assert result.complete == serial.complete
            assert _core(result.stats) == _core(serial.stats)
            assert result.stats.workers == 2
            # Warm pool: a second solve on a different network reuses
            # the workers and reships the changed kernel.
            other = random_network(10, 4, 0.5, 0.35, seed=41)
            expected = _serial(other)
            again = solver.solve(other)
            assert again.assignment == expected.assignment
            assert _core(again.stats) == _core(expected.stats)
        finally:
            solver.close()

    def test_pool_enumeration_matches_serial(self):
        network = random_network(9, 3, 0.5, 0.3, seed=43)
        kernel = compile_network(network)
        expected = enumerate_solutions(kernel, 8)
        streamed = list(enumerate_solutions_parallel(network, 8, workers=2))
        assert streamed == expected

"""Unit tests for repro.csp.network."""

import pytest

from repro.csp.network import BinaryConstraint, ConstraintNetwork


def paper_example_network() -> ConstraintNetwork:
    """The four-array constraint network of Section 3.

    One correction: the paper lists S24 = {[(1 0), (0 1)], [(1 1), (1 0)]},
    but (1 0) is not in M2 = {(1 -1), (1 1)} -- a typo in the paper.  We
    use [(1 -1), (0 1)] for the first pair (the only in-domain reading);
    the paper's stated solution is unaffected.
    """
    network = ConstraintNetwork()
    network.add_variable("Q1", [(1, 0), (0, 1), (1, 1)])
    network.add_variable("Q2", [(1, -1), (1, 1)])
    network.add_variable("Q3", [(0, 1), (1, 1), (1, 2)])
    network.add_variable("Q4", [(1, 0), (0, 1), (1, 1)])
    network.add_constraint(
        "Q1", "Q2", [((1, 0), (1, 1)), ((0, 1), (1, -1))]
    )
    network.add_constraint(
        "Q1",
        "Q3",
        [((1, 0), (0, 1)), ((0, 1), (1, 1)), ((1, 1), (1, 2))],
    )
    network.add_constraint(
        "Q1", "Q4", [((1, 0), (1, 0)), ((0, 1), (0, 1))]
    )
    network.add_constraint(
        "Q2", "Q3", [((1, 1), (0, 1)), ((1, -1), (1, 1))]
    )
    network.add_constraint(
        "Q2", "Q4", [((1, -1), (0, 1)), ((1, 1), (1, 0))]
    )
    network.add_constraint("Q3", "Q4", [((0, 1), (1, 0))])
    return network


#: The solution the paper states for its example network.
PAPER_SOLUTION = {
    "Q1": (1, 0),
    "Q2": (1, 1),
    "Q3": (0, 1),
    "Q4": (1, 0),
}


class TestConstruction:
    def test_duplicate_variable_rejected(self):
        network = ConstraintNetwork()
        network.add_variable("x", [1])
        with pytest.raises(ValueError):
            network.add_variable("x", [2])

    def test_empty_domain_rejected(self):
        network = ConstraintNetwork()
        with pytest.raises(ValueError):
            network.add_variable("x", [])

    def test_duplicate_domain_values_rejected(self):
        network = ConstraintNetwork()
        with pytest.raises(ValueError):
            network.add_variable("x", [1, 1])

    def test_constraint_on_unknown_variable(self):
        network = ConstraintNetwork()
        network.add_variable("x", [1])
        with pytest.raises(KeyError):
            network.add_constraint("x", "y", [(1, 1)])

    def test_out_of_domain_pair_rejected(self):
        network = ConstraintNetwork()
        network.add_variable("x", [1])
        network.add_variable("y", [1])
        with pytest.raises(ValueError):
            network.add_constraint("x", "y", [(2, 1)])

    def test_self_constraint_rejected(self):
        with pytest.raises(ValueError):
            BinaryConstraint("x", "x", frozenset({(1, 1)}))

    def test_empty_constraint_rejected(self):
        with pytest.raises(ValueError):
            BinaryConstraint("x", "y", frozenset())

    def test_repeated_constraint_intersects(self):
        network = ConstraintNetwork()
        network.add_variable("x", [1, 2])
        network.add_variable("y", [1, 2])
        network.add_constraint("x", "y", [(1, 1), (2, 2)])
        network.add_constraint("y", "x", [(1, 1), (2, 1)])  # re-oriented
        constraint = network.constraint_between("x", "y")
        assert constraint.pairs == frozenset({(1, 1)})

    def test_empty_intersection_rejected(self):
        network = ConstraintNetwork()
        network.add_variable("x", [1, 2])
        network.add_variable("y", [1, 2])
        network.add_constraint("x", "y", [(1, 1)])
        with pytest.raises(ValueError):
            network.add_constraint("x", "y", [(2, 2)])


class TestQueries:
    def test_paper_example_shape(self):
        network = paper_example_network()
        assert len(network.variables) == 4
        assert len(network.constraints) == 6
        # "Domain Size" of the example: 3 + 2 + 3 + 3.
        assert network.total_domain_size == 11
        assert network.search_space_size == 3 * 2 * 3 * 3

    def test_neighbors(self):
        network = paper_example_network()
        assert network.neighbors("Q1") == frozenset({"Q2", "Q3", "Q4"})
        assert network.degree("Q2") == 3

    def test_check_pair(self):
        network = paper_example_network()
        assert network.check_pair("Q1", (1, 0), "Q2", (1, 1))
        assert not network.check_pair("Q1", (1, 0), "Q2", (1, -1))
        # Order-insensitive.
        assert network.check_pair("Q2", (1, 1), "Q1", (1, 0))

    def test_unconstrained_pair_always_ok(self):
        network = ConstraintNetwork()
        network.add_variable("x", [1])
        network.add_variable("y", [2])
        assert network.check_pair("x", 1, "y", 2)

    def test_paper_solution_is_solution(self):
        network = paper_example_network()
        assert network.is_solution(PAPER_SOLUTION)

    def test_partial_assignment_not_solution(self):
        network = paper_example_network()
        partial = dict(PAPER_SOLUTION)
        del partial["Q4"]
        assert not network.is_solution(partial)

    def test_wrong_value_not_solution(self):
        network = paper_example_network()
        wrong = dict(PAPER_SOLUTION, Q4=(0, 1))
        assert not network.is_solution(wrong)

    def test_conflicted_constraints(self):
        network = paper_example_network()
        wrong = dict(PAPER_SOLUTION, Q4=(1, 1))
        violated = network.conflicted_constraints(wrong)
        assert violated  # Q1-Q4, Q2-Q4 and Q3-Q4 all break
        names = {frozenset((c.first, c.second)) for c in violated}
        assert frozenset(("Q3", "Q4")) in names


class TestConstraintObject:
    def test_other(self):
        constraint = BinaryConstraint("a", "b", frozenset({(1, 2)}))
        assert constraint.other("a") == "b"
        assert constraint.other("b") == "a"
        with pytest.raises(ValueError):
            constraint.other("c")

    def test_allows_orientation(self):
        constraint = BinaryConstraint("a", "b", frozenset({(1, 2)}))
        assert constraint.allows("a", 1, 2)
        assert constraint.allows("b", 2, 1)
        assert not constraint.allows("a", 2, 1)

    def test_supported_values(self):
        constraint = BinaryConstraint(
            "a", "b", frozenset({(1, 2), (3, 2), (1, 4)})
        )
        assert constraint.supported_values("a", 2) == frozenset({1, 3})
        assert constraint.supported_values("b", 1) == frozenset({2, 4})


class TestCopyWithDomains:
    def test_prunes_values_and_pairs(self):
        network = paper_example_network()
        pruned = network.copy_with_domains({"Q1": [(1, 0), (0, 1)]})
        assert pruned.domain("Q1") == ((1, 0), (0, 1))
        constraint = pruned.constraint_between("Q1", "Q3")
        assert all(a != (1, 1) for (a, _) in constraint.pairs)

    def test_wipeout_raises(self):
        network = paper_example_network()
        with pytest.raises(ValueError):
            network.copy_with_domains({"Q3": [(1, 2)], "Q4": [(0, 1)]})

"""Unit tests for the compiled kernel (repro.csp.compiled)."""

import pickle

import pytest

from repro.csp.compiled import CompiledNetwork, as_compiled, compile_network, iter_bits
from repro.csp.network import ConstraintNetwork
from repro.csp.random_networks import random_network
from tests.csp.test_network import paper_example_network


class TestCompilation:
    def test_interning_tables(self):
        network = paper_example_network()
        kernel = compile_network(network)
        assert kernel.names == network.variables
        for i, name in enumerate(kernel.names):
            assert kernel.index_of[name] == i
            assert kernel.domains[i] == network.domain(name)
            assert kernel.full_masks[i] == (1 << len(network.domain(name))) - 1
            for a, value in enumerate(kernel.domains[i]):
                assert kernel.value_index[i][value] == a

    def test_neighbors_match_network(self):
        network = paper_example_network()
        kernel = compile_network(network)
        for i, name in enumerate(kernel.names):
            named = {kernel.names[j] for j in kernel.neighbors[i]}
            assert named == set(network.neighbors(name))
            assert list(kernel.neighbors[i]) == sorted(kernel.neighbors[i])

    def test_name_rank_orders_lexicographically(self):
        network = ConstraintNetwork()
        for name in ("bravo", "alpha", "charlie"):
            network.add_variable(name, [0])
        kernel = compile_network(network)
        by_rank = sorted(kernel.names, key=lambda n: kernel.name_rank[kernel.index_of[n]])
        assert by_rank == ["alpha", "bravo", "charlie"]

    def test_allows_matches_legacy_constraint(self):
        network = random_network(6, 4, density=0.8, tightness=0.5, seed=11)
        kernel = compile_network(network)
        for constraint in network.constraints:
            i = kernel.index_of[constraint.first]
            j = kernel.index_of[constraint.second]
            for a, value_i in enumerate(kernel.domains[i]):
                for b, value_j in enumerate(kernel.domains[j]):
                    expected = constraint.allows(constraint.first, value_i, value_j)
                    assert kernel.allows(i, a, j, b) == expected
                    assert kernel.allows(j, b, i, a) == expected

    def test_unconstrained_pair_allows_everything(self):
        network = ConstraintNetwork()
        network.add_variable("x", [0, 1])
        network.add_variable("y", [0, 1])
        kernel = compile_network(network)
        assert kernel.allows(0, 1, 1, 0)
        assert kernel.support_mask(0, 0, 1) == kernel.full_masks[1]

    def test_support_mask_matches_supported_values(self):
        network = random_network(5, 4, density=0.9, tightness=0.4, seed=2)
        kernel = compile_network(network)
        for constraint in network.constraints:
            i = kernel.index_of[constraint.first]
            j = kernel.index_of[constraint.second]
            for b, value_j in enumerate(kernel.domains[j]):
                mask = kernel.supports[(j, i)][b]
                supported = {
                    kernel.domains[i][a] for a in iter_bits(mask)
                }
                assert supported == set(
                    constraint.supported_values(constraint.first, value_j)
                )


class TestCaching:
    def test_recompilation_is_cached(self):
        network = paper_example_network()
        assert compile_network(network) is compile_network(network)

    def test_mutation_invalidates_cache(self):
        network = ConstraintNetwork()
        network.add_variable("x", [0, 1])
        network.add_variable("y", [0, 1])
        before = compile_network(network)
        network.add_constraint("x", "y", [(0, 0), (1, 1)])
        after = compile_network(network)
        assert after is not before
        assert not after.allows(0, 0, 1, 1)
        assert compile_network(network) is after

    def test_as_compiled_passthrough(self):
        kernel = compile_network(paper_example_network())
        assert as_compiled(kernel) is kernel


class TestRoundTrip:
    def test_named_index_round_trip(self):
        network = paper_example_network()
        kernel = compile_network(network)
        named = {name: network.domain(name)[0] for name in network.variables}
        values = kernel.to_indices(named)
        assert kernel.to_named(values) == named

    def test_partial_assignment_round_trip(self):
        network = paper_example_network()
        kernel = compile_network(network)
        name = network.variables[0]
        values = kernel.to_indices({name: network.domain(name)[-1]})
        assert values.count(None) == kernel.variable_count - 1
        assert kernel.to_named(values) == {name: network.domain(name)[-1]}

    def test_is_solution_agrees_with_network(self):
        network = random_network(4, 3, density=0.9, tightness=0.4, seed=5)
        kernel = compile_network(network)
        from itertools import product

        for combo in product(*(range(len(d)) for d in kernel.domains)):
            values = list(combo)
            assert kernel.is_solution(values) == network.is_solution(
                kernel.to_named(values)
            )

    def test_partial_is_not_solution(self):
        kernel = compile_network(paper_example_network())
        assert not kernel.is_solution([None] * kernel.variable_count)


class TestCanonicalForm:
    def test_matches_network_canonical_form(self):
        for seed in range(5):
            network = random_network(6, 4, density=0.6, tightness=0.5, seed=seed)
            kernel = compile_network(network)
            assert kernel.canonical_form() == network.canonical_form()

    def test_matches_on_paper_example(self):
        network = paper_example_network()
        assert compile_network(network).canonical_form() == network.canonical_form()


class TestPickling:
    def test_kernel_survives_pickling(self):
        network = paper_example_network()
        kernel = compile_network(network)
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.names == kernel.names
        assert clone.supports == kernel.supports
        assert clone.canonical_form() == kernel.canonical_form()


class TestIterBits:
    @pytest.mark.parametrize(
        "mask,expected",
        [(0, []), (1, [0]), (0b1010, [1, 3]), (0b1111, [0, 1, 2, 3])],
    )
    def test_ascending_positions(self, mask, expected):
        assert list(iter_bits(mask)) == expected

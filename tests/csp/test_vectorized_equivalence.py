"""Property-based equivalence: numpy engine vs bitset engine.

The bitset kernel (PR 2) defines the solver semantics; the vectorized
numpy kernel is only allowed to make the same search cheaper.  Over
random networks this suite asserts, for every solver and for AC-3,
that the two engines agree **byte for byte**: same assignments, same
UNSAT proofs, same pruned domains, and the same effort counters
(nodes, backtracks, backjumps, consistency checks, restarts) -- which
also pins the RNG streams, since a diverging stream immediately
diverges the counters.

Mirrors ``test_compiled_equivalence.py`` one tier up: that suite ties
the bitset kernel to the legacy object semantics, this one ties the
numpy kernel to the bitset kernel.
"""

import pytest

pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.arc_consistency import ac3
from repro.csp.backjumping import ConflictDirectedSolver
from repro.csp.backtracking import BacktrackingSolver
from repro.csp.compiled import compile_network
from repro.csp.enhanced import EnhancedSolver, EnhancementConfig
from repro.csp.forward_checking import ForwardCheckingSolver
from repro.csp.minconflicts import MinConflictsSolver
from repro.csp.random_networks import random_network
from repro.csp.vectorized import batch_min_conflicts
from repro.csp.weighted import BranchAndBoundSolver, WeightedNetwork

#: scheme name -> (seed, engine) -> solver; every systematic scheme.
ENGINE_SCHEMES = {
    "base": lambda seed, engine: BacktrackingSolver(seed=seed, engine=engine),
    "enhanced": lambda seed, engine: EnhancedSolver(seed=seed, engine=engine),
    "cbj": lambda seed, engine: ConflictDirectedSolver(seed=seed, engine=engine),
    "forward-checking": lambda seed, engine: ForwardCheckingSolver(
        seed=seed, engine=engine
    ),
    "min-conflicts": lambda seed, engine: MinConflictsSolver(
        seed=seed, max_steps=150, max_restarts=2, engine=engine
    ),
}


@st.composite
def small_networks(draw):
    """Random networks spanning loose, tight, SAT and UNSAT regimes."""
    variables = draw(st.integers(2, 6))
    domain = draw(st.integers(2, 5))
    density = draw(st.floats(0.2, 1.0))
    tightness = draw(st.floats(0.0, 0.7))
    seed = draw(st.integers(0, 10_000))
    plant = draw(st.booleans())
    return random_network(
        variables, domain, density, tightness, seed=seed, plant_solution=plant
    )


def counters(result):
    stats = result.stats.as_dict()
    stats.pop("time_seconds")  # wall clock is the one legitimate delta
    return stats


@given(small_networks(), st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_engines_agree_on_every_scheme(network, seed):
    """Assignment, completeness and all counters match per scheme."""
    kernel = compile_network(network)
    for name, make in ENGINE_SCHEMES.items():
        bitset = make(seed, "bitset").solve(kernel)
        numpy = make(seed, "numpy").solve(kernel)
        assert bitset.assignment == numpy.assignment, name
        assert bitset.complete == numpy.complete, name
        assert counters(bitset) == counters(numpy), name
        if numpy.satisfiable:
            assert network.is_solution(numpy.assignment), name


@given(small_networks(), st.booleans(), st.booleans())
@settings(max_examples=25, deadline=None)
def test_engines_agree_on_ordering_ablations(network, var_on, val_on):
    """Each enhancement toggle individually takes the same decisions."""
    kernel = compile_network(network)
    config = EnhancementConfig(var_on, val_on, backjumping=True)
    bitset = EnhancedSolver(config, seed=2, engine="bitset").solve(kernel)
    numpy = EnhancedSolver(config, seed=2, engine="numpy").solve(kernel)
    assert bitset.assignment == numpy.assignment
    assert counters(bitset) == counters(numpy)


@given(small_networks())
@settings(max_examples=30, deadline=None)
def test_engines_agree_on_ac3(network):
    """Consistency verdict, pruned domains and revision/removal counts."""
    kernel = compile_network(network)
    bitset = ac3(kernel, engine="bitset")
    numpy = ac3(kernel, engine="numpy")
    assert bitset.consistent == numpy.consistent
    assert bitset.domains == numpy.domains
    assert bitset.revisions == numpy.revisions
    assert bitset.removed == numpy.removed


@given(small_networks())
@settings(max_examples=25, deadline=None)
def test_engines_agree_on_weighted_branch_and_bound(network):
    """Optimum, exact satisfied weight (bitwise) and counters match."""
    kernel = compile_network(network)
    weighted = WeightedNetwork(network)
    bitset = BranchAndBoundSolver(engine="bitset").solve(weighted)
    numpy = BranchAndBoundSolver(engine="numpy").solve(weighted)
    assert bitset.assignment == numpy.assignment
    assert bitset.satisfied_weight == numpy.satisfied_weight
    assert bitset.optimal_weight == numpy.optimal_weight
    assert counters_weighted(bitset) == counters_weighted(numpy)
    compiled = BranchAndBoundSolver(engine="numpy").solve_compiled(kernel)
    reference = BranchAndBoundSolver(engine="bitset").solve_compiled(kernel)
    assert compiled.assignment == reference.assignment
    assert compiled.satisfied_weight == reference.satisfied_weight


def counters_weighted(result):
    stats = result.stats.as_dict()
    stats.pop("time_seconds")
    return stats


@given(small_networks(), st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_batched_chains_match_sequential_solves(network, chain_count):
    """Each lockstep chain is byte-identical to its standalone run."""
    kernel = compile_network(network)
    seeds = [7 * index + 1 for index in range(chain_count)]
    batched = batch_min_conflicts(
        kernel, seeds, max_steps=120, max_restarts=2, engine="numpy"
    )
    assert len(batched) == chain_count
    for seed, result in zip(seeds, batched):
        standalone = MinConflictsSolver(
            seed=seed, max_steps=120, max_restarts=2, engine="bitset"
        ).solve(kernel)
        assert result.assignment == standalone.assignment
        assert result.complete == standalone.complete
        assert counters(result) == counters(standalone)
        if result.satisfiable:
            assert network.is_solution(result.assignment)


@given(small_networks())
@settings(max_examples=15, deadline=None)
def test_auto_engine_matches_both_explicit_engines(network):
    """``auto`` may pick either engine; the answer must not depend on it."""
    kernel = compile_network(network)
    auto = EnhancedSolver(seed=5, engine="auto").solve(kernel)
    bitset = EnhancedSolver(seed=5, engine="bitset").solve(kernel)
    assert auto.assignment == bitset.assignment
    assert counters(auto) == counters(bitset)

"""Golden-output test for the textual optimization report."""

import textwrap

from repro.csp.stats import SolverStats
from repro.eval.cost import Cost
from repro.layout.layout import column_major, row_major
from repro.opt.optimizer import (
    CandidateScore,
    OptimizationOutcome,
    RefinementReport,
)
from repro.opt.report import optimization_report


def _outcome(cost=None, refinement=None):
    """A hand-built outcome: every field fixed, so the report is too."""
    return OptimizationOutcome(
        program="golden",
        scheme="enhanced",
        layouts={"A": row_major(2), "B": column_major(2)},
        stats=SolverStats(nodes=12, consistency_checks=345, backtracks=6),
        solve_seconds=0.123,
        network=None,
        exact=True,
        cost=cost,
        refinement=refinement,
    )


class TestGoldenReport:
    def test_plain_outcome(self):
        expected = textwrap.dedent(
            """\
            program: golden
            scheme: enhanced (exact)
            layouts:
            array  layout
            -----  -------------------
            A      row-major (1  0)
            B      column-major (0  1)
            solver effort: 12 nodes, 345 consistency checks, 6 backtracks"""
        )
        assert optimization_report(_outcome()) == expected

    def test_simulated_cost_and_refinement(self):
        cost = Cost(
            model="simulated",
            value=123456.0,
            unit="cycles",
            details={
                "cache_report": {
                    "L1D": {"hit_rate": 0.875},
                    "L1I": {"hit_rate": 0.999},
                    "L2": {"hit_rate": 0.5},
                }
            },
        )
        refinement = RefinementReport(
            model="simulated",
            candidates=(
                CandidateScore(
                    label="search",
                    layouts={},
                    analytic_value=1000.0,
                    refined_value=130000.0,
                ),
                CandidateScore(
                    label="solution-1",
                    layouts={},
                    analytic_value=1200.0,
                    refined_value=123456.0,
                    chosen=True,
                ),
            ),
            agreement=-1.0,
            evaluate_seconds=0.5,
        )
        expected = textwrap.dedent(
            """\
            program: golden
            scheme: enhanced (exact)
            layouts:
            array  layout
            -----  -------------------
            A      row-major (1  0)
            B      column-major (0  1)
            solver effort: 12 nodes, 345 consistency checks, 6 backtracks
            cost model: simulated -> 123,456 cycles
            simulated hit rates: L1D 87.5%  L1I 99.9%  L2 50.0%
            refinement (simulated, agreement tau=-1.00):
            candidate   analytic  simulated  chosen
            ----------  --------  ---------  ------
            search      1,000     130,000
            solution-1  1,200     123,456    *"""
        )
        assert optimization_report(_outcome(cost, refinement)) == expected

    def test_best_effort_label(self):
        outcome = _outcome()
        outcome.exact = False
        assert "best-effort" in optimization_report(outcome)

    def test_pass_timing_table(self):
        outcome = _outcome()
        outcome.pass_seconds = {
            "build": 0.01,
            "solve": 0.06,
            "repair": 0.02,
            "transform": 0.01,
        }
        expected = textwrap.dedent(
            """\
            program: golden
            scheme: enhanced (exact)
            layouts:
            array  layout
            -----  -------------------
            A      row-major (1  0)
            B      column-major (0  1)
            solver effort: 12 nodes, 345 consistency checks, 6 backtracks
            pass timings:
            pass       seconds  share
            ---------  -------  -----
            build       0.0100  10.0%
            solve       0.0600  60.0%
            repair      0.0200  20.0%
            transform   0.0100  10.0%"""
        )
        assert optimization_report(outcome) == expected

    def test_empty_pass_seconds_omit_the_table(self):
        assert "pass timings" not in optimization_report(_outcome())

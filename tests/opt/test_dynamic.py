"""Tests for the dynamic-layout planner (paper future work #2)."""

import pytest

from repro.ir.parser import parse_program
from repro.layout.layout import column_major, row_major
from repro.opt.dynamic import DynamicLayoutPlanner

#: A program whose access pattern for B flips between nests: a static
#: layout must lose in one of them, a dynamic layout can redistribute.
FLIPPING = """
array B[256][256]
array OUTA[256][256]
array OUTB[256][256]
nest rows weight=8 {
    for i = 0 .. 255 { for j = 0 .. 255 { OUTA[i][j] = B[i][j] } }
}
nest cols weight=8 {
    for i = 0 .. 255 { for j = 0 .. 255 { OUTB[i][j] = B[j][i] } }
}
"""

#: Here B is accessed the same way everywhere: dynamic must not change.
STABLE = """
array B[64][64]
array OUT[64][64]
nest one {
    for i = 0 .. 63 { for j = 0 .. 63 { OUT[i][j] = B[i][j] } }
}
nest two {
    for i = 0 .. 63 { for j = 0 .. 63 { OUT[j][i] = B[i][j] } }
}
"""


class TestDynamicPlanner:
    def test_flipping_program_changes_layout(self):
        program = parse_program(FLIPPING)
        plan = DynamicLayoutPlanner().plan(program, "B")
        assert plan.changes == 1
        schedule = dict(plan.schedule)
        assert schedule["rows"] == row_major(2)
        assert schedule["cols"] == column_major(2)

    def test_flipping_improves_over_static(self):
        program = parse_program(FLIPPING)
        plan = DynamicLayoutPlanner().plan(program, "B")
        assert plan.total_cost < plan.static_cost
        assert plan.improvement > 0

    def test_stable_program_keeps_layout(self):
        program = parse_program(STABLE)
        plan = DynamicLayoutPlanner().plan(program, "B")
        assert plan.changes == 0
        assert plan.total_cost == pytest.approx(plan.static_cost)

    def test_expensive_redistribution_blocks_changes(self):
        program = parse_program(FLIPPING)
        planner = DynamicLayoutPlanner(
            redistribution_cost_per_element=10_000.0
        )
        plan = planner.plan(program, "B")
        assert plan.changes == 0

    def test_free_redistribution_always_changes_when_useful(self):
        program = parse_program(FLIPPING)
        planner = DynamicLayoutPlanner(redistribution_cost_per_element=0.0)
        plan = planner.plan(program, "B")
        assert plan.changes == 1

    def test_negative_redistribution_rejected(self):
        with pytest.raises(ValueError):
            DynamicLayoutPlanner(redistribution_cost_per_element=-1.0)

    def test_unreferenced_array_rejected(self):
        program = parse_program(FLIPPING + "\narray Ghost[8][8]\n")
        with pytest.raises(ValueError):
            DynamicLayoutPlanner().plan(program, "Ghost")

    def test_plan_all_covers_referenced_arrays(self):
        program = parse_program(FLIPPING)
        plans = DynamicLayoutPlanner().plan_all(program)
        assert set(plans) == {"B", "OUTA", "OUTB"}

    def test_schedule_covers_exactly_referencing_nests(self):
        program = parse_program(FLIPPING)
        plan = DynamicLayoutPlanner().plan(program, "OUTA")
        assert [name for name, _ in plan.schedule] == ["rows"]

    def test_dp_is_optimal_vs_bruteforce(self):
        """Exhaustive check on a small instance: the DP cost equals the
        best cost over all layout sequences."""
        from itertools import product

        from repro.layout.candidates import candidate_layouts_for_array

        program = parse_program(STABLE)
        planner = DynamicLayoutPlanner()
        plan = planner.plan(program, "B")
        nests = program.nests_referencing("B")
        candidates = candidate_layouts_for_array(program, "B")
        decl = program.array("B")
        change_cost = 2.0 * decl.element_count
        best = float("inf")
        for sequence in product(range(len(candidates)), repeat=len(nests)):
            cost = sum(
                planner.access_cost(program, nest, "B", candidates[index])
                for nest, index in zip(nests, sequence)
            )
            cost += sum(
                change_cost
                for a, b in zip(sequence, sequence[1:])
                if a != b
            )
            best = min(best, cost)
        assert plan.total_cost == pytest.approx(best)

"""Tests for the solution-repair pass and the stats/report plumbing."""

import pytest

from repro.csp.stats import SolverResult, SolverStats
from repro.ir.parser import parse_program
from repro.layout.layout import Layout, column_major, row_major
from repro.opt.network_builder import build_layout_network
from repro.opt.optimizer import LayoutOptimizer, repair_inflation
from repro.opt.report import format_table

#: B is read row-wise in a heavy nest; plenty of decoy layouts exist in
#: the domain via restructurings.
SIMPLE = """
array B[96][96]
array OUT[96][96]
nest sweep weight=4 {
    for i = 0 .. 95 { for j = 0 .. 95 { OUT[i][j] = B[i][j] } }
}
"""


class TestRepairInflation:
    def test_repair_keeps_solution(self):
        program = parse_program(SIMPLE)
        network = build_layout_network(program).network
        # Start from a deliberately exotic but valid solution if one
        # exists; otherwise from whatever the solver returns.
        from repro.csp.enhanced import EnhancedSolver

        result = EnhancedSolver().solve(network)
        assignment = dict(result.assignment)
        repair_inflation(network, assignment, program)
        assert network.is_solution(assignment)

    def test_repair_prefers_row_major_for_row_sweep(self):
        program = parse_program(SIMPLE)
        outcome = LayoutOptimizer(scheme="enhanced").optimize(program)
        assert outcome.layouts["B"] == row_major(2)
        assert outcome.layouts["OUT"] == row_major(2)

    def test_repair_is_idempotent(self):
        program = parse_program(SIMPLE)
        network = build_layout_network(program).network
        from repro.csp.enhanced import EnhancedSolver

        assignment = dict(EnhancedSolver().solve(network).assignment)
        repair_inflation(network, assignment, program)
        once = dict(assignment)
        repair_inflation(network, assignment, program)
        assert assignment == once


class TestSolverStats:
    def test_total_effort(self):
        stats = SolverStats(nodes=5, consistency_checks=11)
        assert stats.total_effort == 16

    def test_as_dict_keys(self):
        stats = SolverStats()
        assert set(stats.as_dict()) == {
            "nodes",
            "backtracks",
            "backjumps",
            "consistency_checks",
            "restarts",
            "time_seconds",
        }

    def test_result_satisfiable(self):
        assert SolverResult({"x": 1}, SolverStats()).satisfiable
        assert not SolverResult(None, SolverStats()).satisfiable


class TestReportFormatting:
    def test_numeric_right_alignment(self):
        table = format_table(["n"], [[5], [123]])
        lines = table.splitlines()
        assert lines[-1] == "123"
        assert lines[-2] == "  5"

    def test_mixed_columns(self):
        table = format_table(
            ["name", "pct"], [["alpha", "50.0%"], ["b", "7.1%"]]
        )
        assert "alpha" in table

"""Unit tests for program -> constraint network construction."""

import pytest

from repro.ir.parser import parse_program
from repro.layout.layout import column_major, diagonal, row_major
from repro.opt.network_builder import BuildOptions, build_layout_network

FIGURE2 = """
array Q1[512][512]
array Q2[512][512]
nest fig2 {
    for i1 = 0 .. 255 {
        for i2 = 0 .. 255 {
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }
    }
}
"""

TWO_NESTS = """
array A[128][128]
array B[128][128]
array C[128][128]
nest first weight=4 {
    for i = 0 .. 127 {
        for j = 0 .. 127 {
            A[i][j] = B[j][i]
        }
    }
}
nest second {
    for i = 0 .. 127 {
        for j = 0 .. 127 {
            C[i][j] = B[j][i]
        }
    }
}
"""


class TestFigure2Network:
    def test_variables_and_domains(self):
        program = parse_program(FIGURE2)
        result = build_layout_network(program)
        network = result.network
        assert set(network.variables) == {"Q1", "Q2"}
        # Q1's identity-preference (1 -1) must be in its domain.
        assert diagonal() in network.domain("Q1")
        assert column_major(2) in network.domain("Q2")

    def test_constraint_pairs_match_paper(self):
        """Identity wants (Q1, Q2) = ((1 -1), (0 1)); interchange wants
        ((0 1), (1 -1)) -- exactly the Section 2 discussion."""
        program = parse_program(FIGURE2)
        result = build_layout_network(program)
        constraint = result.network.constraint_between("Q1", "Q2")
        assert constraint is not None
        oriented = constraint.pairs
        if constraint.first == "Q2":
            oriented = frozenset((b, a) for (a, b) in oriented)
        assert (diagonal(), column_major(2)) in oriented
        assert (column_major(2), diagonal()) in oriented

    def test_notes_empty_for_sane_input(self):
        result = build_layout_network(parse_program(FIGURE2))
        assert result.notes == []


class TestDomainsAndWeights:
    def test_domain_size_reported(self):
        result = build_layout_network(parse_program(TWO_NESTS))
        assert result.domain_size == result.network.total_domain_size

    def test_standard_layouts_included_by_default(self):
        result = build_layout_network(parse_program(TWO_NESTS))
        for variable in result.network.variables:
            assert row_major(2) in result.network.domain(variable)

    def test_standard_layouts_can_be_excluded(self):
        options = BuildOptions(include_standard=False)
        result = build_layout_network(parse_program(TWO_NESTS), options)
        # Domains shrink to just the locality-derived candidates.
        default = build_layout_network(parse_program(TWO_NESTS))
        assert result.domain_size <= default.domain_size

    def test_weights_reflect_nest_costs(self):
        result = build_layout_network(parse_program(TWO_NESTS))
        program = parse_program(TWO_NESTS)
        weight_ab = result.weights[frozenset(("A", "B"))]
        weight_cb = result.weights[frozenset(("B", "C"))]
        # The first nest has weight 4, so its pair outweighs the second's.
        assert weight_ab == 4 * weight_cb

    def test_weighted_network_roundtrip(self):
        result = build_layout_network(parse_program(TWO_NESTS))
        weighted = result.weighted()
        assert weighted.total_weight == sum(result.weights.values())


class TestCombineModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            BuildOptions(combine="vote")

    def test_intersect_mode_falls_back_on_conflict(self):
        """Two nests wanting incompatible pairs for (A, B): intersect
        mode cannot keep both, falls back to union with a note."""
        source = """
        array A[64][64]
        array B[64][64]
        nest wants_rows {
            for i = 0 .. 63 { for j = 0 .. 63 { A[i][j] = B[i][j] } }
        }
        nest wants_cols {
            for i = 0 .. 63 { for j = 0 .. 63 { A[j][i] = B[j][i] } }
        }
        """
        program = parse_program(source)
        result = build_layout_network(
            program, BuildOptions(combine="intersect")
        )
        # Both nests allow both (row, row) and (col, col) via identity
        # and interchange, so the intersection here is NOT empty; no
        # note is expected, and the network is satisfiable.
        assert result.network.constraint_between("A", "B") is not None

    def test_union_is_superset_of_intersect(self):
        program = parse_program(TWO_NESTS)
        union = build_layout_network(program, BuildOptions(combine="union"))
        intersect = build_layout_network(
            program, BuildOptions(combine="intersect")
        )
        for constraint in intersect.network.constraints:
            union_constraint = union.network.constraint_between(
                constraint.first, constraint.second
            )
            oriented = constraint.pairs
            if union_constraint.first != constraint.first:
                oriented = frozenset((b, a) for (a, b) in oriented)
            assert oriented <= union_constraint.pairs


class TestErrors:
    def test_program_without_references_rejected(self):
        source = "array A[4][4]"
        with pytest.raises(ValueError):
            build_layout_network(parse_program(source))

"""The shared-optimizer memo: reuse across requests in one process."""

from repro.ir.parser import parse_program
from repro.opt import BuildOptions, shared_optimizer
from repro.opt.optimizer import _SHARED_OPTIMIZERS, _SHARED_OPTIMIZERS_CAP


FIGURE2 = """
array Q1[520][260]
array Q2[520][260]
nest fig2 {
    for i1 = 0 .. 259 {
        for i2 = 0 .. 259 {
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }
    }
}
"""


class TestSharedOptimizer:
    def test_same_configuration_returns_same_instance(self):
        first = shared_optimizer(scheme="enhanced", seed=3)
        second = shared_optimizer(scheme="enhanced", seed=3)
        assert first is second

    def test_different_configurations_get_distinct_instances(self):
        assert shared_optimizer(scheme="enhanced") is not shared_optimizer(
            scheme="cbj"
        )
        assert shared_optimizer(scheme="enhanced", seed=1) is not shared_optimizer(
            scheme="enhanced", seed=2
        )
        assert shared_optimizer(
            scheme="enhanced", options=BuildOptions(include_reversals=True)
        ) is not shared_optimizer(scheme="enhanced")

    def test_shared_instance_serves_repeat_requests(self):
        program = parse_program(FIGURE2)
        optimizer = shared_optimizer(scheme="enhanced")
        first = optimizer.optimize(program)
        second = shared_optimizer(scheme="enhanced").optimize(program)
        assert first.layouts == second.layouts
        assert first.exact and second.exact

    def test_configured_model_instances_bypass_the_memo(self):
        """Non-string refine models are not memoizable by value."""
        from repro.eval import AnalyticCostModel

        model = AnalyticCostModel()
        first = shared_optimizer(scheme="enhanced", refine=model)
        second = shared_optimizer(scheme="enhanced", refine=model)
        assert first is not second

    def test_pool_is_bounded(self):
        for seed in range(_SHARED_OPTIMIZERS_CAP + 8):
            shared_optimizer(scheme="enhanced", seed=1000 + seed)
        assert len(_SHARED_OPTIMIZERS) <= _SHARED_OPTIMIZERS_CAP

"""The shared-optimizer memo: reuse across requests in one process."""

from repro.ir.parser import parse_program
from repro.opt import BuildOptions, shared_optimizer
from repro.opt.optimizer import _SHARED_OPTIMIZERS, _SHARED_OPTIMIZERS_CAP


FIGURE2 = """
array Q1[520][260]
array Q2[520][260]
nest fig2 {
    for i1 = 0 .. 259 {
        for i2 = 0 .. 259 {
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }
    }
}
"""


class TestSharedOptimizer:
    def test_same_configuration_returns_same_instance(self):
        first = shared_optimizer(scheme="enhanced", seed=3)
        second = shared_optimizer(scheme="enhanced", seed=3)
        assert first is second

    def test_different_configurations_get_distinct_instances(self):
        assert shared_optimizer(scheme="enhanced") is not shared_optimizer(
            scheme="cbj"
        )
        assert shared_optimizer(scheme="enhanced", seed=1) is not shared_optimizer(
            scheme="enhanced", seed=2
        )
        assert shared_optimizer(
            scheme="enhanced", options=BuildOptions(include_reversals=True)
        ) is not shared_optimizer(scheme="enhanced")

    def test_shared_instance_serves_repeat_requests(self):
        program = parse_program(FIGURE2)
        optimizer = shared_optimizer(scheme="enhanced")
        first = optimizer.optimize(program)
        second = shared_optimizer(scheme="enhanced").optimize(program)
        assert first.layouts == second.layouts
        assert first.exact and second.exact

    def test_configured_model_instances_bypass_the_memo(self):
        """Non-string refine models are not memoizable by value."""
        from repro.eval import AnalyticCostModel

        model = AnalyticCostModel()
        first = shared_optimizer(scheme="enhanced", refine=model)
        second = shared_optimizer(scheme="enhanced", refine=model)
        assert first is not second

    def test_pool_is_bounded(self):
        for seed in range(_SHARED_OPTIMIZERS_CAP + 8):
            shared_optimizer(scheme="enhanced", seed=1000 + seed)
        assert len(_SHARED_OPTIMIZERS) <= _SHARED_OPTIMIZERS_CAP

    def test_eviction_is_lru_not_fifo(self):
        """A hit refreshes recency: hot configurations survive eviction.

        Regression test for the FIFO pool: eviction popped insertion
        order, so the hottest (oldest-inserted) configuration was the
        first to go while stale ones survived.
        """
        _SHARED_OPTIMIZERS.clear()
        hot = shared_optimizer(scheme="enhanced", seed=2000)
        for seed in range(2001, 2000 + _SHARED_OPTIMIZERS_CAP):
            shared_optimizer(scheme="enhanced", seed=seed)
        assert len(_SHARED_OPTIMIZERS) == _SHARED_OPTIMIZERS_CAP
        # Touch the oldest-inserted entry, then overflow the pool: the
        # eviction must take the least-recently-used entry (seed 2001),
        # not the oldest-inserted (the hot one).
        assert shared_optimizer(scheme="enhanced", seed=2000) is hot
        shared_optimizer(scheme="enhanced", seed=3000)
        assert shared_optimizer(scheme="enhanced", seed=2000) is hot
        assert len(_SHARED_OPTIMIZERS) == _SHARED_OPTIMIZERS_CAP
        keys = list(_SHARED_OPTIMIZERS)
        assert not any(key[1] == 2001 for key in keys)

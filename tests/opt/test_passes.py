"""The pass pipeline: equivalence gate, composition, new passes.

The refactor contract: ``LayoutOptimizer``'s default pipeline must be
byte-identical to the pre-refactor monolithic façade.  ``_legacy_optimize``
below is a verbatim port of that monolith (direct-scheme path plus
refinement), kept as the oracle; the equivalence tests drive both over
the five paper programs and a hypothesis suite of random programs and
compare layouts, effort counters, exactness and refinement evidence.
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.programs import (
    BENCHMARK_NAMES,
    benchmark_build_options,
    build_benchmark,
    random_suite,
)
from repro.csp.weighted import BranchAndBoundSolver
from repro.layout.layout import row_major
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.opt.network_builder import BuildOptions, build_layout_network
from repro.opt.optimizer import (
    _SCHEMES,
    LayoutOptimizer,
    repair_inflation,
    select_transforms,
)
from repro.opt.passes import (
    PASS_SECONDS_METRIC,
    Pipeline,
    PipelineContext,
    PipelineError,
    TransformSelectionPass,
    available_passes,
    register_pass,
    resolve_passes,
)
from repro.opt.passes.base import _PASS_FACTORIES
from repro.opt.passes.refine import _layout_key

#: Direct (non-portfolio) schemes exercised by the equivalence gate.
DIRECT_SCHEMES = ("enhanced", "cbj", "forward-checking", "weighted")


def _legacy_optimize(
    program,
    scheme="enhanced",
    seed=0,
    options=None,
    refine=None,
    refine_top_k=8,
):
    """The pre-refactor monolith, ported verbatim as the test oracle.

    Returns ``(layouts, stats, exact, cost, refinement)`` exactly as
    the old ``LayoutOptimizer.optimize`` (direct path, serial
    refinement enumeration) produced them.
    """
    options = options if options is not None else BuildOptions()
    solver = _SCHEMES[scheme](seed)
    layout_network = build_layout_network(program, options)
    kernel = layout_network.kernel()
    if isinstance(solver, BranchAndBoundSolver):
        weighted_result = solver.solve_compiled(kernel, layout_network.weights)
        assignment = dict(weighted_result.assignment)
        stats = weighted_result.stats
        exact = weighted_result.fully_satisfied
    else:
        result = solver.solve(kernel)
        exact = result.assignment is not None
        if exact:
            assignment = dict(result.assignment)
            stats = result.stats
        else:
            weighted_result = BranchAndBoundSolver().solve_compiled(
                kernel, layout_network.weights
            )
            assignment = dict(weighted_result.assignment)
            stats = weighted_result.stats
            exact = weighted_result.fully_satisfied
    if exact:
        repair_inflation(layout_network.network, assignment, program)
    layouts = {}
    for decl in program.arrays:
        chosen = assignment.get(decl.name)
        layouts[decl.name] = chosen if chosen is not None else row_major(decl.rank)
    cost = refinement = None
    if refine is not None:
        from repro.csp.compiled import enumerate_solutions
        from repro.eval import AnalyticCostModel, get_cost_model, kendall_tau
        from repro.opt.optimizer import CandidateScore, RefinementReport

        model = get_cost_model(refine) if isinstance(refine, str) else refine
        analytic = model if model.name == "analytic" else AnalyticCostModel()
        solutions = enumerate_solutions(layout_network.kernel(), refine_top_k)
        pool = [("search", dict(layouts))]
        seen = {_layout_key(layouts)}
        for index, solution in enumerate(solutions):
            candidate = {
                decl.name: solution.get(decl.name, row_major(decl.rank))
                for decl in program.arrays
            }
            key = _layout_key(candidate)
            if key in seen:
                continue
            seen.add(key)
            pool.append((f"solution-{index + 1}", candidate))
        scored = []
        for label, candidate in pool:
            transforms = select_transforms(
                program,
                candidate,
                options.include_reversals,
                options.skew_factors,
            )
            candidate_cost = model.score(program, candidate, transforms)
            if analytic is model:
                analytic_value = candidate_cost.value
            else:
                analytic_value = analytic.score(
                    program, candidate, transforms
                ).value
            scored.append((label, candidate, analytic_value, candidate_cost))
        best = min(range(len(scored)), key=lambda i: scored[i][3].value)
        agreement = kendall_tau(
            [entry[2] for entry in scored],
            [entry[3].value for entry in scored],
        )
        refinement = RefinementReport(
            model=model.name,
            candidates=tuple(
                CandidateScore(
                    label=label,
                    layouts=candidate,
                    analytic_value=analytic_value,
                    refined_value=candidate_cost.value,
                    chosen=(index == best),
                )
                for index, (label, candidate, analytic_value, candidate_cost)
                in enumerate(scored)
            ),
            agreement=agreement,
            evaluate_seconds=0.0,
        )
        layouts = dict(scored[best][1])
        cost = scored[best][3]
    return layouts, stats, exact, cost, refinement


def _effort(stats) -> dict:
    counters = stats.as_dict()
    counters.pop("time_seconds", None)
    return counters


def _refinement_rows(report):
    if report is None:
        return None
    return [
        (c.label, c.layouts, c.analytic_value, c.refined_value, c.chosen)
        for c in report.candidates
    ]


def _assert_equivalent(outcome, oracle):
    layouts, stats, exact, cost, refinement = oracle
    assert outcome.layouts == layouts
    assert outcome.exact == exact
    assert _effort(outcome.stats) == _effort(stats)
    if cost is None:
        assert outcome.cost is None and outcome.refinement is None
    else:
        assert outcome.cost.value == cost.value
        assert outcome.refinement.model == refinement.model
        assert outcome.refinement.agreement == refinement.agreement
        assert _refinement_rows(outcome.refinement) == _refinement_rows(
            refinement
        )


class TestDefaultPipelineEquivalence:
    """The refactor gate: default pipeline == pre-refactor monolith."""

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    @pytest.mark.parametrize("scheme", DIRECT_SCHEMES)
    def test_paper_programs_bytewise(self, name, scheme):
        program = build_benchmark(name)
        options = benchmark_build_options()
        outcome = LayoutOptimizer(
            scheme=scheme, seed=0, options=options
        ).optimize(program)
        oracle = _legacy_optimize(program, scheme=scheme, seed=0, options=options)
        _assert_equivalent(outcome, oracle)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_paper_programs_with_refinement(self, name):
        program = build_benchmark(name)
        options = benchmark_build_options()
        outcome = LayoutOptimizer(
            scheme="enhanced", options=options, refine="analytic", refine_top_k=4
        ).optimize(program)
        oracle = _legacy_optimize(
            program,
            scheme="enhanced",
            options=options,
            refine="analytic",
            refine_top_k=4,
        )
        _assert_equivalent(outcome, oracle)

    @given(
        seed=st.integers(0, 10_000),
        scheme=st.sampled_from(DIRECT_SCHEMES),
        refine=st.sampled_from([None, "analytic"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_programs_bytewise(self, seed, scheme, refine):
        program = random_suite(1, seed=seed)[0]
        outcome = LayoutOptimizer(
            scheme=scheme, seed=0, refine=refine, refine_top_k=4
        ).optimize(program)
        oracle = _legacy_optimize(
            program, scheme=scheme, seed=0, refine=refine, refine_top_k=4
        )
        _assert_equivalent(outcome, oracle)


class TestPipelineInfrastructure:
    def test_default_pass_order(self):
        optimizer = LayoutOptimizer()
        assert optimizer.pipeline.names == (
            "build",
            "solve",
            "repair",
            "transform",
        )
        refined = LayoutOptimizer(refine="analytic")
        assert refined.pipeline.names == (
            "build",
            "solve",
            "repair",
            "refine",
            "transform",
        )

    def test_builtin_passes_registered(self):
        assert set(available_passes()) >= {
            "build",
            "solve",
            "repair",
            "transform",
            "refine",
            "joint",
            "dynamic",
        }

    def test_pass_seconds_cover_every_pass_and_sum_to_solve_seconds(self):
        program = build_benchmark("MxM")
        optimizer = LayoutOptimizer()
        outcome = optimizer.optimize(program)
        assert tuple(outcome.pass_seconds) == optimizer.pipeline.names
        assert all(seconds >= 0.0 for seconds in outcome.pass_seconds.values())
        # The runner times the whole pipeline; per-pass clocks must
        # account for (almost) all of it -- only loop overhead between
        # passes lives outside them.
        total = sum(outcome.pass_seconds.values())
        assert total <= outcome.solve_seconds
        assert total >= outcome.solve_seconds * 0.5

    def test_every_pass_emits_span_and_metric(self):
        program = build_benchmark("Shape")
        with obs_trace.recording("test") as root:
            with obs_metrics.collecting() as registry:
                LayoutOptimizer().optimize(program)
        for name in ("build", "solve", "repair", "transform"):
            assert root.find(f"pass:{name}") is not None
        labels = {
            dict(label_items)["pass"]
            for metric, label_items, _ in registry.iter_metrics()
            if metric == PASS_SECONDS_METRIC
        }
        assert labels == {"build", "solve", "repair", "transform"}
        # The phase spans of the monolith survive inside their passes.
        assert root.find("build_network") is not None
        assert root.find("solve") is not None
        assert root.find("transform_selection") is not None

    def test_unknown_pass_name_raises(self):
        with pytest.raises(ValueError, match="unknown pass"):
            LayoutOptimizer(passes=["build", "no-such-pass"])

    def test_passes_and_pipeline_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            LayoutOptimizer(
                passes=["default"], pipeline=[TransformSelectionPass()]
            )

    def test_duplicate_passes_rejected(self):
        with pytest.raises(PipelineError, match="duplicate"):
            LayoutOptimizer(passes=["build", "solve", "build"])

    def test_missing_requirement_fails_with_clear_error(self):
        program = build_benchmark("MxM")
        optimizer = LayoutOptimizer(passes=["transform"])
        with pytest.raises(PipelineError, match="requires \\['layouts'\\]"):
            optimizer.optimize(program)

    def test_refine_pass_needs_a_model(self):
        with pytest.raises(ValueError, match="cost model"):
            LayoutOptimizer(passes=["build", "solve", "repair", "refine"])

    def test_default_token_expands_in_place(self):
        optimizer = LayoutOptimizer(passes=["default", "dynamic"])
        assert optimizer.pipeline.names == (
            "build",
            "solve",
            "repair",
            "transform",
            "dynamic",
        )

    def test_custom_pass_registration(self):
        ran = []

        class TagPass:
            name = "tag"
            requires = ("layouts",)
            provides = ()

            def run(self, ctx):
                ran.append(dict(ctx.layouts))

        register_pass("tag", lambda optimizer: TagPass())
        try:
            optimizer = LayoutOptimizer(passes=["default", "tag"])
            outcome = optimizer.optimize(build_benchmark("MxM"))
            assert ran and ran[0] == outcome.layouts
            assert "tag" in outcome.pass_seconds
        finally:
            _PASS_FACTORIES.pop("tag", None)

    def test_describe_reports_contracts(self):
        rows = LayoutOptimizer().pipeline.describe()
        assert [row["name"] for row in rows] == [
            "build",
            "solve",
            "repair",
            "transform",
        ]
        transform = rows[-1]
        assert transform["requires"] == ["layouts"]
        assert transform["provides"] == ["transforms"]

    def test_resolve_passes_accepts_instances(self):
        optimizer = LayoutOptimizer()
        instance = TransformSelectionPass()
        passes = resolve_passes(["build", instance], optimizer)
        assert passes[1] is instance

    def test_empty_pipeline_rejected(self):
        with pytest.raises(PipelineError, match="at least one"):
            Pipeline([])

    def test_default_pipeline_fills_transforms(self):
        program = build_benchmark("MxM")
        outcome = LayoutOptimizer().optimize(program)
        assert outcome.transforms is not None
        assert set(outcome.transforms) == {
            nest.name for nest in program.nests
        }
        expected = select_transforms(program, outcome.layouts)
        assert outcome.transforms == expected

    def test_portfolio_scheme_runs_through_the_pipeline(self):
        program = build_benchmark("MxM")
        outcome = LayoutOptimizer(
            scheme="portfolio:enhanced,cbj", seed=0
        ).optimize(program)
        assert outcome.scheme.startswith("portfolio:")
        assert outcome.exact
        assert set(outcome.pass_seconds) == {
            "build",
            "solve",
            "repair",
            "transform",
        }
        direct = LayoutOptimizer(scheme="enhanced", seed=0).optimize(program)
        assert outcome.layouts == direct.layouts


class TestJointSearchPass:
    JOINT = ("build", "solve", "repair", "joint", "transform")

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_never_worse_than_sequential_default(self, name):
        """The default (layout, transform) pair seeds the joint pool,
        so the jointly chosen combination can only match or beat it."""
        from repro.eval import AnalyticCostModel

        program = build_benchmark(name)
        options = benchmark_build_options()
        model = AnalyticCostModel()
        default = LayoutOptimizer(scheme="enhanced", options=options).optimize(
            program
        )
        sequential = model.score(
            program, default.layouts, default.transforms
        )
        joint = LayoutOptimizer(
            scheme="enhanced", options=options, passes=list(self.JOINT)
        ).optimize(program)
        assert joint.cost is not None
        assert joint.cost.value <= sequential.value
        assert joint.transforms is not None
        assert joint.refinement.chosen.layouts == joint.layouts

    def test_strictly_improves_simulated_cost_on_track(self):
        """Acceptance gate: joint search beats the sequential default's
        simulated cost on a Table 3 program (Track; full-simulation
        deltas for all five programs are recorded in the README)."""
        from repro.eval import SimulatedCostModel

        program = build_benchmark("Track")
        options = benchmark_build_options()
        model = SimulatedCostModel(max_iterations_per_nest=512)
        default = LayoutOptimizer(scheme="enhanced", options=options).optimize(
            program
        )
        sequential = model.score(
            program, default.layouts, default.transforms
        )
        joint = LayoutOptimizer(
            scheme="enhanced",
            options=options,
            refine=model,
            passes=list(self.JOINT),
        ).optimize(program)
        assert joint.cost.value < sequential.value

    def test_transform_pass_respects_joint_choice(self):
        """Joint-chosen transforms survive the trailing transform pass
        (it only fills the field when no earlier pass set it)."""
        program = build_benchmark("Track")
        options = benchmark_build_options()
        joint = LayoutOptimizer(
            scheme="enhanced", options=options, passes=list(self.JOINT)
        ).optimize(program)
        assert set(joint.transforms) == {nest.name for nest in program.nests}
        assert "transform" in joint.pass_seconds

    def test_joint_emits_span_and_timing(self):
        program = build_benchmark("MxM")
        with obs_trace.recording("test") as root:
            outcome = LayoutOptimizer(passes=list(self.JOINT)).optimize(
                program
            )
        assert root.find("pass:joint") is not None
        assert root.find("joint_search") is not None
        assert "joint" in outcome.pass_seconds


class TestDynamicLayoutPass:
    def test_dynamic_plans_surface_in_the_outcome(self):
        program = build_benchmark("Radar")  # multi-nest paper program
        assert len(program.nests) > 1
        outcome = LayoutOptimizer(passes=["default", "dynamic"]).optimize(
            program
        )
        plans = outcome.dynamic
        assert plans is not None
        assert set(plans) == set(program.referenced_arrays())
        for array, plan in plans.items():
            nests = program.nests_referencing(array)
            assert [name for name, _ in plan.schedule] == [
                nest.name for nest in nests
            ]
            decl = program.array(array)
            assert plan.redistribution_cost == pytest.approx(
                plan.changes * 2.0 * decl.element_count
            )
            assert plan.total_cost <= plan.static_cost

    def test_default_pipeline_leaves_dynamic_unset(self):
        outcome = LayoutOptimizer().optimize(build_benchmark("MxM"))
        assert outcome.dynamic is None

    def test_dynamic_pass_emits_span_and_timing(self):
        program = build_benchmark("Radar")
        with obs_trace.recording("test") as root:
            outcome = LayoutOptimizer(passes=["default", "dynamic"]).optimize(
                program
            )
        assert root.find("pass:dynamic") is not None
        assert root.find("dynamic_layout") is not None
        assert "dynamic" in outcome.pass_seconds

"""Tests for the optimizer façade and the propagation heuristic."""

import pytest

from repro.csp.enhanced import EnhancementConfig
from repro.ir.parser import parse_program
from repro.layout.layout import column_major, diagonal, row_major
from repro.opt.heuristic import HeuristicOptimizer
from repro.opt.optimizer import LayoutOptimizer, select_transforms
from tests.opt.test_network_builder import FIGURE2, TWO_NESTS


class TestLayoutOptimizer:
    @pytest.mark.parametrize("scheme", ["base", "enhanced", "cbj", "forward-checking"])
    def test_figure2_layouts(self, scheme):
        """Every complete scheme reproduces the paper's Figure 2 answer
        (or the interchanged variant -- both satisfy the network)."""
        program = parse_program(FIGURE2)
        outcome = LayoutOptimizer(scheme=scheme, seed=4).optimize(program)
        assert outcome.exact
        pair = (outcome.layouts["Q1"], outcome.layouts["Q2"])
        assert pair in (
            (diagonal(), column_major(2)),
            (column_major(2), diagonal()),
        )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            LayoutOptimizer(scheme="quantum")

    def test_weighted_scheme_is_first_class(self):
        """"weighted" is a registered scheme, not just the UNSAT
        fallback: exact on a satisfiable network, same answer set."""
        program = parse_program(FIGURE2)
        outcome = LayoutOptimizer(scheme="weighted").optimize(program)
        assert outcome.scheme == "weighted"
        assert outcome.exact
        pair = (outcome.layouts["Q1"], outcome.layouts["Q2"])
        assert pair in (
            (diagonal(), column_major(2)),
            (column_major(2), diagonal()),
        )

    def test_enhancement_config_as_scheme(self):
        program = parse_program(FIGURE2)
        config = EnhancementConfig(True, False, True)
        outcome = LayoutOptimizer(scheme=config).optimize(program)
        assert outcome.scheme == "var+bj"
        assert outcome.exact

    def test_every_declared_array_gets_a_layout(self):
        source = FIGURE2 + "\narray Unused[16][16]\n"
        program = parse_program(source)
        outcome = LayoutOptimizer().optimize(program)
        assert outcome.layouts["Unused"] == row_major(2)

    def test_outcome_metadata(self):
        program = parse_program(TWO_NESTS)
        outcome = LayoutOptimizer(scheme="enhanced").optimize(program)
        assert outcome.program == program.name
        assert outcome.solve_seconds >= 0
        assert outcome.network.domain_size > 0

    def test_solution_satisfies_network(self):
        program = parse_program(TWO_NESTS)
        outcome = LayoutOptimizer(scheme="base", seed=9).optimize(program)
        referenced = {
            name: outcome.layouts[name]
            for name in outcome.network.network.variables
        }
        assert outcome.network.network.is_solution(referenced)


class TestHeuristicOptimizer:
    def test_figure2(self):
        program = parse_program(FIGURE2)
        outcome = HeuristicOptimizer().optimize(program)
        pair = (outcome.layouts["Q1"], outcome.layouts["Q2"])
        assert pair in (
            (diagonal(), column_major(2)),
            (column_major(2), diagonal()),
        )

    def test_costly_nest_processed_first(self):
        program = parse_program(TWO_NESTS)
        outcome = HeuristicOptimizer().optimize(program)
        assert outcome.nest_order[0] == "first"  # weight=4 dominates

    def test_propagation_fixes_later_nests(self):
        """B's layout is decided by the first (costly) nest and kept;
        the second nest can still pick C's layout freely."""
        program = parse_program(TWO_NESTS)
        outcome = HeuristicOptimizer().optimize(program)
        # first nest: A[i][j] = B[j][i] with identity wants A row-major,
        # B column-major (or the interchange-flipped variant).
        layouts = outcome.layouts
        assert {layouts["A"], layouts["B"]} <= {
            row_major(2),
            column_major(2),
        }
        assert layouts["C"] in (row_major(2), column_major(2))

    def test_all_arrays_assigned(self):
        program = parse_program(TWO_NESTS)
        outcome = HeuristicOptimizer().optimize(program)
        assert set(outcome.layouts) == {"A", "B", "C"}

    def test_transform_recorded_per_nest(self):
        program = parse_program(TWO_NESTS)
        outcome = HeuristicOptimizer().optimize(program)
        assert set(outcome.transforms) == {"first", "second"}


class TestSelectTransforms:
    def test_identity_when_layouts_match_original_order(self):
        program = parse_program(FIGURE2)
        layouts = {"Q1": diagonal(), "Q2": column_major(2)}
        transforms = select_transforms(program, layouts)
        assert transforms["fig2"].is_identity

    def test_interchange_when_layouts_flipped(self):
        program = parse_program(FIGURE2)
        layouts = {"Q1": column_major(2), "Q2": diagonal()}
        transforms = select_transforms(program, layouts)
        assert transforms["fig2"].name == "permute(1,0)"

    def test_every_nest_gets_a_transform(self):
        program = parse_program(TWO_NESTS)
        layouts = LayoutOptimizer().optimize(program).layouts
        transforms = select_transforms(program, layouts)
        assert set(transforms) == {"first", "second"}

"""Tests for the cost-model registry and the three built-in models."""

import pytest

from repro.eval import (
    AnalyticCostModel,
    SimulatedCostModel,
    WeightedCostModel,
    available_cost_models,
    get_cost_model,
    kendall_tau,
    rank_positions,
    register_cost_model,
)
from repro.eval.cost import Cost
from repro.ir.parser import parse_program
from repro.layout.layout import column_major, row_major
from repro.opt.network_builder import build_layout_network
from repro.opt.optimizer import LayoutOptimizer

#: B is walked column-wise (j inner, first subscript j): column-major
#: is right for B, row-major for OUT.
COLUMN_WALK = """
array B[64][64]
array OUT[64][64]
nest walk {
    for i = 0 .. 63 { for j = 0 .. 63 { OUT[i][j] = B[j][i] } }
}
"""


def _program():
    return parse_program(COLUMN_WALK)


def _good_layouts():
    return {"B": column_major(2), "OUT": row_major(2)}


def _bad_layouts():
    return {"B": row_major(2), "OUT": column_major(2)}


class TestRegistry:
    def test_builtins_registered(self):
        assert available_cost_models() == ("analytic", "simulated", "weighted")

    def test_get_by_name(self):
        assert get_cost_model("analytic").name == "analytic"
        assert get_cost_model("simulated").name == "simulated"
        assert get_cost_model("weighted").name == "weighted"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            get_cost_model("psychic")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_cost_model("analytic")
            class Impostor:
                name = "analytic"

    def test_reregistering_same_class_is_noop(self):
        register_cost_model("analytic")(AnalyticCostModel)


class TestAnalyticModel:
    def test_good_layouts_cost_less(self):
        model = AnalyticCostModel()
        program = _program()
        good = model.score(program, _good_layouts())
        bad = model.score(program, _bad_layouts())
        assert good.value < bad.value
        assert good.unit == "est-misses"
        assert good.model == "analytic"

    def test_reference_classes_counted(self):
        model = AnalyticCostModel()
        details = model.score(_program(), _good_layouts()).details
        classes = details["reference_classes"]
        assert classes["spatial"] == 2
        assert classes["none"] == 0

    def test_bad_line_size_rejected(self):
        with pytest.raises(ValueError):
            AnalyticCostModel(line_size=0)


class TestWeightedModel:
    def test_solution_costs_zero(self):
        program = _program()
        network = build_layout_network(program)
        outcome = LayoutOptimizer(scheme="enhanced").optimize(program)
        model = WeightedCostModel(network=network)
        cost = model.score(program, outcome.layouts)
        assert cost.value == 0.0
        assert cost.details["satisfied_weight"] == cost.details["total_weight"]

    def test_violations_are_priced(self):
        from repro.layout.layout import diagonal

        # Union semantics admit the interchange-matched pair, so the
        # row/column swap still satisfies the network; the diagonal
        # pair suits no restructuring of this nest at all.
        program = _program()
        model = WeightedCostModel(network=build_layout_network(program))
        cost = model.score(program, {"B": diagonal(), "OUT": diagonal()})
        assert cost.value > 0.0
        assert cost.unit == "violated-weight"


class TestSimulatedModel:
    def test_good_layouts_cost_fewer_cycles(self):
        model = SimulatedCostModel()
        program = _program()
        good = model.score(program, _good_layouts())
        bad = model.score(program, _bad_layouts())
        assert good.value < bad.value
        assert good.unit == "cycles"
        assert good.details["cache_report"]["L1D"]["accesses"] > 0

    def test_hierarchy_reuse_is_deterministic(self):
        model = SimulatedCostModel()
        program = _program()
        first = model.score(program, _good_layouts())
        second = model.score(program, _good_layouts())
        assert first.value == second.value
        assert first.details["cache_report"] == second.details["cache_report"]

    def test_sampling_cap_marks_result(self):
        model = SimulatedCostModel(max_iterations_per_nest=100)
        cost = model.score(_program(), _good_layouts())
        assert cost.details["sampled"] is True

    def test_custom_hierarchy_changes_cost(self):
        from repro.cachesim.hierarchy import HierarchyConfig

        program = _program()
        slow = SimulatedCostModel(
            hierarchy_config=HierarchyConfig(memory_latency=300)
        ).score(program, _bad_layouts())
        fast = SimulatedCostModel().score(program, _bad_layouts())
        assert slow.value > fast.value


class TestAgreement:
    def test_rank_positions(self):
        assert rank_positions([30.0, 10.0, 20.0]) == [3, 1, 2]

    def test_tau_bounds(self):
        assert kendall_tau([1, 2, 3], [10, 20, 30]) == 1.0
        assert kendall_tau([1, 2, 3], [30, 20, 10]) == -1.0

    def test_tau_ignores_ties(self):
        assert kendall_tau([1, 1, 2], [5, 9, 7]) == 0.0

    def test_tau_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau([1], [1, 2])

    def test_cost_str(self):
        assert str(Cost("analytic", 1234.0, "est-misses")) == (
            "analytic: 1,234 est-misses"
        )

"""Tests for simulation-guided refinement in the optimizer."""

import pytest

from repro.csp.compiled import enumerate_solutions
from repro.eval import SimulatedCostModel
from repro.ir.parser import parse_program
from repro.opt.network_builder import build_layout_network
from repro.opt.optimizer import LayoutOptimizer, select_transforms
from repro.simul.executor import simulate_program

#: Two nests pulling B in different directions: the network admits
#: several solutions and only simulation can price them against the
#: nests' relative weights.
TWO_NESTS = """
array B[64][64]
array OUT[64][64]
array ACC[64][64]
nest rows weight=2 {
    for i = 0 .. 63 { for j = 0 .. 63 { OUT[i][j] = B[i][j] } }
}
nest cols {
    for i = 0 .. 63 { for j = 0 .. 63 { ACC[j][i] = B[j][i] } }
}
"""


class TestEnumerateSolutions:
    def test_finds_multiple_distinct_solutions(self):
        network = build_layout_network(parse_program(TWO_NESTS))
        solutions = enumerate_solutions(network.kernel(), 4)
        assert 1 <= len(solutions) <= 4
        keys = {tuple(sorted(s.items())) for s in solutions}
        assert len(keys) == len(solutions)
        for solution in solutions:
            assert network.network.is_solution(solution)

    def test_limit_respected(self):
        network = build_layout_network(parse_program(TWO_NESTS))
        assert len(enumerate_solutions(network.kernel(), 1)) == 1

    def test_bad_limit_rejected(self):
        network = build_layout_network(parse_program(TWO_NESTS))
        with pytest.raises(ValueError):
            enumerate_solutions(network.kernel(), 0)

    def test_deterministic(self):
        network = build_layout_network(parse_program(TWO_NESTS))
        assert enumerate_solutions(network.kernel(), 5) == enumerate_solutions(
            network.kernel(), 5
        )


class TestRefinedOptimizer:
    def test_refined_outcome_carries_cost_and_report(self):
        outcome = LayoutOptimizer(
            refine=SimulatedCostModel(), refine_top_k=4
        ).optimize(parse_program(TWO_NESTS))
        assert outcome.cost is not None
        assert outcome.cost.model == "simulated"
        assert outcome.refinement is not None
        assert outcome.refinement.chosen.layouts == outcome.layouts
        assert -1.0 <= outcome.refinement.agreement <= 1.0

    def test_refined_never_loses_to_unrefined(self):
        program = parse_program(TWO_NESTS)
        plain = LayoutOptimizer().optimize(program)
        refined = LayoutOptimizer(
            refine=SimulatedCostModel(), refine_top_k=6
        ).optimize(program)

        def cycles(layouts):
            transforms = select_transforms(program, layouts)
            return simulate_program(program, layouts, transforms=transforms).cycles

        assert cycles(refined.layouts) <= cycles(plain.layouts)
        assert refined.cost.value == cycles(refined.layouts)

    def test_refine_by_name(self):
        outcome = LayoutOptimizer(refine="analytic").optimize(
            parse_program(TWO_NESTS)
        )
        assert outcome.cost.model == "analytic"
        assert outcome.refinement.model == "analytic"

    def test_refine_weighted_scores_against_optimizer_options(self):
        """The weighted refine model must build its scoring network
        with the optimizer's own BuildOptions, not the defaults."""
        from repro.opt.network_builder import BuildOptions

        options = BuildOptions(skew_factors=(1, 2))
        optimizer = LayoutOptimizer(options=options, refine="weighted")
        assert optimizer._refine._options is options
        outcome = optimizer.optimize(parse_program(TWO_NESTS))
        assert outcome.cost.model == "weighted"
        assert outcome.cost.value == 0.0  # chosen candidate satisfies net

    def test_bad_top_k_rejected(self):
        with pytest.raises(ValueError):
            LayoutOptimizer(refine="analytic", refine_top_k=0)

    def test_unknown_refine_model_rejected(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            LayoutOptimizer(refine="clairvoyant")

    def test_portfolio_scheme_composes_with_refine(self):
        from repro.service.portfolio import PortfolioConfig

        config = PortfolioConfig(schemes=("enhanced",), parallel=False)
        outcome = LayoutOptimizer(
            scheme=config, refine=SimulatedCostModel(), refine_top_k=3
        ).optimize(parse_program(TWO_NESTS))
        assert outcome.cost is not None
        assert outcome.scheme.startswith("portfolio:")

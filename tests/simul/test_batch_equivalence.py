"""The batch engine must be byte-identical to the per-iteration engine."""

import pytest

pytest.importorskip("numpy")

from repro.ir.parser import parse_program
from repro.layout.layout import column_major, diagonal, row_major
from repro.simul.executor import ENGINES, resolve_engine, simulate_program
from repro.transform.unimodular_loop import (
    compose,
    permutation_transform,
    reversal_transform,
    skew_transform,
)

MIXED = """
array A[79][40]
array B[40][40]
array C[40][40]
nest n1 weight=2 {
    for i = 0 .. 39 { for j = 0 .. 39 { A[i][j] = B[j][i] } }
}
nest n2 {
    for i = 0 .. 39 { for j = 0 .. 39 { C[i][j] = A[i+j][j] } }
}
"""

DEEP = """
array T[12][12][12]
nest cube weight=3 {
    for i = 0 .. 11 { for j = 0 .. 11 { for k = 0 .. 11 {
        T[k][j][i] = T[i][j][k]
    } } }
}
"""


def _key(result):
    return (
        result.cycles,
        result.instructions,
        result.memory_accesses,
        result.cache_report,
        result.footprint_bytes,
    )


def _assert_engines_agree(program, layouts, transforms=None, **kwargs):
    periter = simulate_program(
        program, layouts, transforms=transforms, engine="periter", **kwargs
    )
    batch = simulate_program(
        program, layouts, transforms=transforms, engine="batch", **kwargs
    )
    assert _key(batch) == _key(periter)
    assert batch.engine == "batch" and periter.engine == "periter"
    return batch


class TestEquivalence:
    @pytest.mark.parametrize(
        "layouts",
        [
            {"A": row_major(2), "B": row_major(2), "C": row_major(2)},
            {"A": column_major(2), "B": row_major(2), "C": diagonal()},
        ],
        ids=["row-major", "mixed"],
    )
    def test_untransformed(self, layouts):
        _assert_engines_agree(parse_program(MIXED), layouts)

    @pytest.mark.parametrize(
        "transform",
        [
            permutation_transform((1, 0)),
            reversal_transform(2, 1),
            skew_transform(2, 0, 1, 1),
            compose(permutation_transform((1, 0)), skew_transform(2, 1, 0, 2)),
        ],
        ids=["interchange", "reversal", "skew", "interchange*skew"],
    )
    def test_transformed(self, transform):
        program = parse_program(MIXED)
        layouts = {"A": row_major(2), "B": column_major(2), "C": diagonal()}
        _assert_engines_agree(
            program, layouts, transforms={"n1": transform, "n2": transform}
        )

    def test_depth_three_nest(self):
        program = parse_program(DEEP)
        _assert_engines_agree(program, {"T": row_major(3)})
        _assert_engines_agree(
            program,
            {"T": row_major(3)},
            transforms={"cube": permutation_transform((2, 0, 1))},
        )

    def test_sampling_cap_agrees_across_engines(self):
        program = parse_program(MIXED)
        layouts = {"A": row_major(2), "B": row_major(2), "C": row_major(2)}
        result = _assert_engines_agree(
            program, layouts, max_iterations_per_nest=500
        )
        assert result.sampled is True
        full = simulate_program(program, layouts)
        assert full.sampled is False
        assert result.cycles != full.cycles  # truncation + scaling differ

    def test_sampling_cap_agrees_on_transformed_nests(self):
        """The capped transformed walk takes the scanner's prefix, not
        a slice of the fully-materialized space; totals must still be
        engine-identical."""
        program = parse_program(MIXED)
        layouts = {"A": row_major(2), "B": column_major(2), "C": diagonal()}
        transform = compose(
            permutation_transform((1, 0)), skew_transform(2, 1, 0, 2)
        )
        result = _assert_engines_agree(
            program,
            layouts,
            transforms={"n1": transform, "n2": skew_transform(2, 0, 1, 1)},
            max_iterations_per_nest=300,
        )
        assert result.sampled is True

    def test_auto_engine_resolves_to_batch_with_numpy(self):
        assert resolve_engine("auto") == "batch"
        assert set(ENGINES) == {"batch", "periter"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_program(
                parse_program(DEEP), {"T": row_major(3)}, engine="quantum"
            )

    def test_bad_sampling_cap_rejected(self):
        with pytest.raises(ValueError, match="max_iterations_per_nest"):
            simulate_program(
                parse_program(DEEP),
                {"T": row_major(3)},
                max_iterations_per_nest=0,
            )


class TestBlockStreaming:
    def test_transformed_full_walk_streams_in_blocks(self):
        """Small block sizes must chunk the transformed walk without
        changing the emitted address stream."""
        import numpy as np

        from repro.simul.addressmap import AddressMap
        from repro.simul.batchwalk import iter_address_blocks
        from repro.simul.tracegen import compile_nest_accesses

        program = parse_program(MIXED)
        layouts = {"A": row_major(2), "B": column_major(2), "C": diagonal()}
        amap = AddressMap(program, layouts)
        plan = compile_nest_accesses(program.nests[0], amap, code_base=0)
        transform = skew_transform(2, 0, 1, 1)
        one_shot = np.concatenate(
            [a for _, a in iter_address_blocks(plan, transform)]
        )
        blocks = [
            a for _, a in iter_address_blocks(
                plan, transform, block_iterations=64
            )
        ]
        assert len(blocks) > 1
        assert all(len(block) <= 64 for block in blocks)
        assert np.array_equal(np.concatenate(blocks), one_shot)


class TestHierarchyReuse:
    def test_reused_hierarchy_matches_fresh(self):
        from repro.cachesim.hierarchy import MemoryHierarchy

        program = parse_program(MIXED)
        layouts = {"A": row_major(2), "B": row_major(2), "C": row_major(2)}
        shared = MemoryHierarchy()
        warm = simulate_program(program, layouts, hierarchy=shared)
        again = simulate_program(program, layouts, hierarchy=shared)
        fresh = simulate_program(program, layouts)
        assert _key(warm) == _key(again) == _key(fresh)

"""Integration tests for the program simulator."""

import pytest

from repro.ir.arrays import ArrayDecl
from repro.ir.expr import AffineExpr
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import AccessKind, ArrayRef
from repro.layout.layout import column_major, row_major
from repro.simul.executor import simulate_program
from repro.transform.unimodular_loop import permutation_transform

_i = AffineExpr.var("i")
_j = AffineExpr.var("j")

N = 160  # 160x160 float32 = 100KB per array: exceeds both L1 and L2


def _column_walk_program():
    """A nest reading B column-wise: B[j][i] with j inner."""
    arrays = (ArrayDecl("B", (N, N)),)
    nest = LoopNest(
        "walk",
        (Loop("i", 0, N - 1), Loop("j", 0, N - 1)),
        (ArrayRef("B", (_j, _i), AccessKind.READ),),
    )
    return Program("p", arrays, (nest,))


class TestLayoutEffect:
    def test_matching_layout_cuts_cycles(self):
        """Column-wise access under row-major thrashes L1; under
        column-major it streams.  This is the paper's core claim.  (A
        single column is small enough to stay L2-resident, so the
        single-reference penalty is the L1-miss latency; multi-array
        nests compound it -- see the Table 3 benchmark.)"""
        program = _column_walk_program()
        bad = simulate_program(program, {"B": row_major(2)})
        good = simulate_program(program, {"B": column_major(2)})
        assert good.cycles < 0.75 * bad.cycles
        assert good.l1_miss_rate < bad.l1_miss_rate / 4

    def test_instruction_counts_unaffected_by_layout(self):
        program = _column_walk_program()
        bad = simulate_program(program, {"B": row_major(2)})
        good = simulate_program(program, {"B": column_major(2)})
        assert bad.instructions == good.instructions
        assert bad.memory_accesses == good.memory_accesses


class TestTransformEffect:
    def test_interchange_equals_layout_fix(self):
        """Interchanging the loops makes the row-major walk sequential:
        roughly the same cycles as fixing the layout instead."""
        program = _column_walk_program()
        transformed = simulate_program(
            program,
            {"B": row_major(2)},
            transforms={"walk": permutation_transform((1, 0))},
        )
        relaid = simulate_program(program, {"B": column_major(2)})
        assert transformed.cycles == pytest.approx(relaid.cycles, rel=0.25)

    def test_identity_transform_is_noop(self):
        program = _column_walk_program()
        plain = simulate_program(program, {"B": row_major(2)})
        explicit = simulate_program(
            program,
            {"B": row_major(2)},
            transforms={"walk": permutation_transform((0, 1))},
        )
        assert plain.cycles == explicit.cycles


class TestWeights:
    def test_weight_scales_costs(self):
        arrays = (ArrayDecl("B", (N, N)),)
        body = (ArrayRef("B", (_i, _j), AccessKind.READ),)
        loops = (Loop("i", 0, N - 1), Loop("j", 0, N - 1))
        light = Program(
            "light", arrays, (LoopNest("n", loops, body, weight=1),)
        )
        heavy = Program(
            "heavy", arrays, (LoopNest("n", loops, body, weight=3),)
        )
        light_result = simulate_program(light, {"B": row_major(2)})
        heavy_result = simulate_program(heavy, {"B": row_major(2)})
        assert heavy_result.cycles == 3 * light_result.cycles
        assert heavy_result.instructions == 3 * light_result.instructions


class TestResultFields:
    def test_footprint_and_report(self):
        program = _column_walk_program()
        result = simulate_program(program, {"B": row_major(2)})
        assert result.footprint_bytes >= N * N * 4
        assert result.cache_report["L1D"]["accesses"] == N * N
        assert result.memory_accesses == N * N
        assert result.cycles > 0


def _copy_program(weight: int = 1):
    """OUT[i][j] = B[i][j]: one read and one write per iteration."""
    arrays = (ArrayDecl("B", (N, N)), ArrayDecl("OUT", (N, N)))
    nest = LoopNest(
        "copy",
        (Loop("i", 0, N - 1), Loop("j", 0, N - 1)),
        (
            ArrayRef("B", (_i, _j), AccessKind.READ),
            ArrayRef("OUT", (_i, _j), AccessKind.WRITE),
        ),
        weight=weight,
    )
    return Program("copy", arrays, (nest,))


class TestWritePaths:
    """Write traffic: access counts, writebacks, determinism."""

    def test_read_write_access_counts(self):
        result = simulate_program(
            _copy_program(), {"B": row_major(2), "OUT": row_major(2)}
        )
        # One read + one write per iteration, all single-line.
        assert result.memory_accesses == 2 * N * N
        assert result.cache_report["L1D"]["accesses"] == 2 * N * N

    def test_writes_cause_writebacks(self):
        """OUT (100KB) streams through the 8KB L1 dirty: nearly every
        evicted OUT line is written back; read-only B contributes none."""
        result = simulate_program(
            _copy_program(), {"B": row_major(2), "OUT": row_major(2)}
        )
        stats = result.cache_report["L1D"]
        line_elements = 32 // 4
        out_lines = N * N // line_elements
        assert stats["writebacks"] >= 0.9 * out_lines
        assert stats["writebacks"] <= stats["evictions"]

    def test_read_only_program_has_no_writebacks(self):
        result = simulate_program(_column_walk_program(), {"B": row_major(2)})
        assert result.cache_report["L1D"]["writebacks"] == 0
        assert result.cache_report["L2"]["writebacks"] == 0

    def test_weight_scales_write_statistics_totals(self):
        light = simulate_program(
            _copy_program(weight=1), {"B": row_major(2), "OUT": row_major(2)}
        )
        heavy = simulate_program(
            _copy_program(weight=4), {"B": row_major(2), "OUT": row_major(2)}
        )
        assert heavy.memory_accesses == 4 * light.memory_accesses
        assert heavy.cycles == 4 * light.cycles

    def test_simulation_is_deterministic_across_runs(self):
        """Identical totals (including write/writeback statistics) for
        two independent runs of the same configuration."""
        layouts = {"B": row_major(2), "OUT": column_major(2)}
        runs = [
            simulate_program(_copy_program(), layouts) for _ in range(2)
        ]
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].instructions == runs[1].instructions
        assert runs[0].memory_accesses == runs[1].memory_accesses
        assert runs[0].cache_report == runs[1].cache_report

"""Unit tests for address mapping and compiled access functions."""

import pytest

from repro.ir.arrays import ArrayDecl
from repro.ir.expr import AffineExpr
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.reference import AccessKind, ArrayRef
from repro.layout.layout import column_major, diagonal, row_major
from repro.simul.addressmap import AddressMap
from repro.simul.tracegen import compile_nest_accesses

_i = AffineExpr.var("i")
_j = AffineExpr.var("j")


def _program():
    arrays = (ArrayDecl("A", (8, 8)), ArrayDecl("B", (8, 8)))
    nest = LoopNest(
        "n",
        (Loop("i", 0, 7), Loop("j", 0, 7)),
        (
            ArrayRef("B", (_j, _i), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ),
    )
    return Program("p", arrays, (nest,))


class TestAddressMap:
    def test_bases_aligned_and_disjoint(self):
        program = _program()
        layouts = {"A": row_major(2), "B": row_major(2)}
        amap = AddressMap(program, layouts, base=0x1000, alignment=256)
        assert amap.base_of("A") == 0x1000
        assert amap.base_of("B") % 256 == 0
        assert amap.base_of("B") >= amap.base_of("A") + 8 * 8 * 4

    def test_missing_layout_rejected(self):
        with pytest.raises(KeyError):
            AddressMap(_program(), {"A": row_major(2)})

    def test_bad_alignment_rejected(self):
        layouts = {"A": row_major(2), "B": row_major(2)}
        with pytest.raises(ValueError):
            AddressMap(_program(), layouts, alignment=3)

    def test_diagonal_layout_inflates_footprint(self):
        program = _program()
        plain = AddressMap(
            program, {"A": row_major(2), "B": row_major(2)}
        ).total_footprint_bytes()
        inflated = AddressMap(
            program, {"A": diagonal(), "B": row_major(2)}
        ).total_footprint_bytes()
        assert inflated > plain

    def test_address_of_matches_mapping(self):
        program = _program()
        layouts = {"A": row_major(2), "B": column_major(2)}
        amap = AddressMap(program, layouts)
        assert amap.address_of("A", (1, 2)) == amap.base_of("A") + (8 + 2) * 4
        assert amap.address_of("B", (1, 2)) == amap.base_of("B") + (2 * 8 + 1) * 4


class TestCompiledAccesses:
    @pytest.mark.parametrize(
        "layout_a,layout_b",
        [
            (row_major(2), row_major(2)),
            (column_major(2), row_major(2)),
            (diagonal(), column_major(2)),
        ],
    )
    def test_linear_function_matches_direct_computation(self, layout_a, layout_b):
        """The folded coefficients must reproduce base + byte_offset
        for every iteration point and reference."""
        program = _program()
        layouts = {"A": layout_a, "B": layout_b}
        amap = AddressMap(program, layouts)
        nest = program.nests[0]
        plan = compile_nest_accesses(nest, amap, code_base=0)
        for point in nest.iterations():
            values = dict(zip(nest.index_order, point))
            for reference, access in zip(nest.body, plan.accesses):
                element = reference.element_at(values)
                expected = amap.address_of(reference.array, element)
                assert access.address_at(point) == expected

    def test_plan_metadata(self):
        program = _program()
        amap = AddressMap(program, {"A": row_major(2), "B": row_major(2)})
        plan = compile_nest_accesses(
            program.nests[0], amap, code_base=0x400000,
            ops_per_reference=4, loop_overhead_ops=3,
        )
        assert plan.code_base == 0x400000
        assert plan.ops_per_iteration == 3 + 4 * 2
        assert plan.accesses[0].is_write is False
        assert plan.accesses[1].is_write is True
        assert plan.accesses[0].size == 4


class TestIncrementalStepping:
    """The step-delta table must reproduce the full dot product."""

    @pytest.mark.parametrize(
        "layout_a,layout_b",
        [
            (row_major(2), row_major(2)),
            (column_major(2), row_major(2)),
            (diagonal(), column_major(2)),
        ],
    )
    def test_incremental_addresses_pin_address_at(self, layout_a, layout_b):
        """Regression: walking the box with step(axis) yields exactly
        the addresses address_at computes point by point."""
        program = _program()
        amap = AddressMap(program, {"A": layout_a, "B": layout_b})
        nest = program.nests[0]
        plan = compile_nest_accesses(nest, amap, code_base=0)
        box = nest.iteration_box()
        for access in plan.accesses:
            walker = access.incremental(box)
            previous = None
            for point in nest.iterations():
                if previous is not None:
                    # The axis that advanced is the outermost changed one.
                    axis = next(
                        i for i in range(len(point)) if point[i] != previous[i]
                    )
                    walker.step(axis)
                assert walker.address == access.address_at(point), point
                previous = point

    def test_step_table_innermost_is_coefficient(self):
        program = _program()
        amap = AddressMap(program, {"A": row_major(2), "B": row_major(2)})
        plan = compile_nest_accesses(program.nests[0], amap, code_base=0)
        box = program.nests[0].iteration_box()
        for access in plan.accesses:
            deltas = access.step_table(box)
            assert deltas[-1] == access.coeffs[-1]

    def test_step_table_outer_includes_rollover(self):
        program = _program()
        amap = AddressMap(program, {"A": row_major(2), "B": row_major(2)})
        plan = compile_nest_accesses(program.nests[0], amap, code_base=0)
        box = program.nests[0].iteration_box()
        access = plan.accesses[1]  # A[i][j], row-major: coeffs (32, 4)
        deltas = access.step_table(box)
        span = box[1][1] - box[1][0]
        assert deltas[0] == access.coeffs[0] - access.coeffs[1] * span

"""Hierarchy-config validation, reset/reuse, and batch-access parity."""

import random

import pytest

from repro.cachesim.cache import Cache, ReplacementPolicy
from repro.cachesim.hierarchy import HierarchyConfig, MemoryHierarchy


class TestHierarchyConfigValidation:
    def test_defaults_are_valid(self):
        HierarchyConfig()

    def test_non_positive_latency_rejected(self):
        with pytest.raises(ValueError, match="latencies"):
            HierarchyConfig(l2_latency=0)

    def test_non_power_of_two_size_rejected(self):
        with pytest.raises(ValueError, match="l1_size"):
            HierarchyConfig(l1_size=3000)
        with pytest.raises(ValueError, match="l2_size"):
            HierarchyConfig(l2_size=96 * 1024)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError, match="l1_line"):
            HierarchyConfig(l1_line=48)
        with pytest.raises(ValueError, match="l2_line"):
            HierarchyConfig(l2_line=0)

    def test_line_larger_than_size_rejected(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            HierarchyConfig(l1_size=1024, l1_line=2048)

    def test_associativity_must_divide_set_count(self):
        with pytest.raises(ValueError, match="l1_associativity"):
            HierarchyConfig(l1_associativity=3)
        with pytest.raises(ValueError, match="l2_associativity"):
            HierarchyConfig(l2_associativity=0)

    def test_fingerprint_distinguishes_machines(self):
        assert (
            HierarchyConfig().fingerprint()
            != HierarchyConfig(l2_latency=9).fingerprint()
        )


class TestReset:
    def test_cache_reset_restores_cold_state(self):
        cache = Cache("L1D", 1024, 2, 32)
        for address in range(0, 4096, 32):
            cache.access(address, 4, is_write=True)
        assert cache.stats.accesses > 0
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.stats.writebacks == 0
        assert not cache.contains(0)

    def test_hierarchy_reset_zeros_every_level(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access_data(0x1000, 4, is_write=True)
        hierarchy.access_instruction(0x4000)
        hierarchy.reset()
        report = hierarchy.report()
        for level in ("L1D", "L1I", "L2"):
            assert report[level]["accesses"] == 0

    def test_random_policy_reset_reseeds(self):
        def victim_trace():
            cache = Cache("c", 256, 2, 32, policy=ReplacementPolicy.RANDOM, seed=7)
            trace = []
            for line in range(64):
                trace.append(cache.access_line(line * 4, False))
            cache.reset()
            for line in range(64):
                trace.append(cache.access_line(line * 4 + 1, False))
            return trace

        assert victim_trace() == victim_trace()


class TestBatchParity:
    """hierarchy.access_data_lines == sequential access_data, exactly."""

    def _random_stream(self, seed, count=4000, lines=600):
        rng = random.Random(seed)
        return (
            [rng.randrange(lines) for _ in range(count)],
            [rng.random() < 0.3 for _ in range(count)],
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_matches_sequential(self, seed):
        np = pytest.importorskip("numpy")
        line_list, write_list = self._random_stream(seed)

        sequential = MemoryHierarchy()
        l1_line = sequential.l1_data.line_size
        for line, is_write in zip(line_list, write_list):
            sequential.access_data(line * l1_line, 4, is_write)

        batched = MemoryHierarchy()
        total, l1_misses, l2_misses = batched.access_data_lines(
            np.asarray(line_list, dtype=np.int64),
            np.asarray(write_list, dtype=bool),
        )
        assert batched.report() == sequential.report()
        assert total == len(line_list)
        assert l1_misses == sequential.report()["L1D"]["misses"]
        assert l2_misses == sequential.report()["L2"]["misses"]

    def test_batch_preserves_state_for_later_accesses(self):
        np = pytest.importorskip("numpy")
        line_list, write_list = self._random_stream(9, count=1000)
        sequential = MemoryHierarchy()
        l1_line = sequential.l1_data.line_size
        for line, is_write in zip(line_list, write_list):
            sequential.access_data(line * l1_line, 4, is_write)
        batched = MemoryHierarchy()
        batched.access_data_lines(
            np.asarray(line_list, dtype=np.int64),
            np.asarray(write_list, dtype=bool),
        )
        # Continue per-access on both: states must have converged.
        for line in range(50):
            assert sequential.access_data(
                line * l1_line, 4, False
            ) == batched.access_data(line * l1_line, 4, False)
        assert batched.report() == sequential.report()

    def test_empty_batch_is_noop(self):
        np = pytest.importorskip("numpy")
        hierarchy = MemoryHierarchy()
        assert hierarchy.access_data_lines(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool)
        ) == (0, 0, 0)

    def test_random_policy_rejected_for_runs(self):
        cache = Cache("c", 256, 2, 32, policy=ReplacementPolicy.RANDOM)
        with pytest.raises(ValueError, match="deterministic"):
            cache.access_line_runs([1], [1], [1], [0])

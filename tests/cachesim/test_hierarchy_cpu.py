"""Unit tests for the hierarchy and CPU timing models."""

import pytest

from repro.cachesim.cpu import CPUConfig, DualIssueCPU
from repro.cachesim.hierarchy import (
    HierarchyConfig,
    MemoryHierarchy,
    paper_hierarchy,
)


class TestHierarchyConfig:
    def test_paper_defaults(self):
        config = HierarchyConfig()
        assert config.l1_size == 8 * 1024
        assert config.l1_associativity == 2
        assert config.l1_line == 32
        assert config.l2_size == 64 * 1024
        assert config.l2_associativity == 4
        assert config.l2_line == 64
        assert (config.l1_latency, config.l2_latency, config.memory_latency) == (
            1,
            6,
            70,
        )

    def test_bad_latency_rejected(self):
        with pytest.raises(ValueError):
            HierarchyConfig(l1_latency=0)


class TestHierarchyLatencies:
    def test_full_miss_latency(self):
        hierarchy = paper_hierarchy()
        latency = hierarchy.access_data(0, 4, False)
        assert latency == 1 + 6 + 70

    def test_l1_hit_latency(self):
        hierarchy = paper_hierarchy()
        hierarchy.access_data(0, 4, False)
        assert hierarchy.access_data(0, 4, False) == 1

    def test_l2_hit_latency(self):
        hierarchy = paper_hierarchy()
        hierarchy.access_data(0, 4, False)
        # Evict line 0 from L1 by touching two conflicting lines
        # (L1: 128 sets * 32B = 4096B stride per set index).
        hierarchy.access_data(8 * 1024, 4, False)
        hierarchy.access_data(16 * 1024, 4, False)
        # L2 is bigger (64KB), so line 0 is still in L2.
        assert hierarchy.access_data(0, 4, False) == 1 + 6

    def test_instruction_path_separate_from_data(self):
        hierarchy = paper_hierarchy()
        hierarchy.access_data(0, 4, False)
        # Same address through the I-cache still misses L1I (separate),
        # but hits L2 (unified) -- the structure of the paper's config.
        assert hierarchy.access_instruction(0) == 1 + 6

    def test_flush_resets_contents(self):
        hierarchy = paper_hierarchy()
        hierarchy.access_data(0, 4, False)
        hierarchy.flush()
        assert hierarchy.access_data(0, 4, False) == 77

    def test_report_levels(self):
        hierarchy = paper_hierarchy()
        hierarchy.access_data(0, 4, False)
        report = hierarchy.report()
        assert set(report) == {"L1D", "L1I", "L2"}
        assert report["L1D"]["misses"] == 1


class TestCPU:
    def test_dual_issue_ops(self):
        cpu = DualIssueCPU(paper_hierarchy())
        cpu.execute_ops(10)
        assert cpu.cycles == 5
        assert cpu.instructions == 10

    def test_odd_ops_round_up(self):
        cpu = DualIssueCPU(paper_hierarchy())
        cpu.execute_ops(3)
        assert cpu.cycles == 2

    def test_negative_ops_rejected(self):
        cpu = DualIssueCPU(paper_hierarchy())
        with pytest.raises(ValueError):
            cpu.execute_ops(-1)

    def test_memory_stall(self):
        cpu = DualIssueCPU(paper_hierarchy())
        cpu.execute_memory(0, 4, False)  # full miss: 77 cycles latency
        assert cpu.cycles == 1 + 76
        assert cpu.memory_accesses == 1

    def test_memory_hit_costs_one_cycle(self):
        cpu = DualIssueCPU(paper_hierarchy())
        cpu.execute_memory(0, 4, False)
        start = cpu.cycles
        cpu.execute_memory(0, 4, False)
        assert cpu.cycles - start == 1

    def test_instruction_fetch_hits_are_free(self):
        cpu = DualIssueCPU(paper_hierarchy())
        cpu.fetch_instructions(0x400000, 8)  # cold: stalls
        cold = cpu.cycles
        cpu.fetch_instructions(0x400000, 8)  # warm: pipelined
        assert cpu.cycles == cold

    def test_issue_width_validated(self):
        with pytest.raises(ValueError):
            CPUConfig(issue_width=0)

    def test_cache_behavior_dominates_cycles(self):
        """Row-wise walk vs column-wise walk of the same data: the
        column walk must cost significantly more cycles -- Table 3's
        entire premise.  The array (256KB) exceeds the 64KB L2, so the
        strided walk cannot hide behind L2 residency."""
        rows, cols, element = 256, 256, 4

        def run(column_major_walk: bool) -> int:
            cpu = DualIssueCPU(paper_hierarchy())
            for a in range(rows):
                for b in range(cols):
                    if column_major_walk:
                        address = (b * cols + a) * element
                    else:
                        address = (a * cols + b) * element
                    cpu.execute_memory(address, element, False)
            return cpu.cycles

        row_cycles = run(False)
        column_cycles = run(True)
        assert column_cycles > 2 * row_cycles

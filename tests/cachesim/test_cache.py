"""Unit tests for the set-associative cache model."""

import pytest

from repro.cachesim.cache import Cache, ReplacementPolicy


def _direct_mapped(lines: int = 4, line_size: int = 32) -> Cache:
    return Cache("t", lines * line_size, 1, line_size)


class TestGeometry:
    def test_sets_computed(self):
        cache = Cache("L1", 8 * 1024, 2, 32)
        assert cache.num_sets == 128

    def test_paper_l1_geometry(self):
        cache = Cache("L1D", 8 * 1024, 2, 32)
        assert cache.num_sets * cache.associativity * cache.line_size == 8192

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", 1024, 2, 24)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 2, 32)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", 96 * 32, 1, 32)

    def test_str(self):
        assert "2-way" in str(Cache("L1", 8192, 2, 32))


class TestHitsAndMisses:
    def test_cold_miss_then_hit(self):
        cache = _direct_mapped()
        assert cache.access_line(0, False) is False
        assert cache.access_line(0, False) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_conflict_eviction_direct_mapped(self):
        cache = _direct_mapped(lines=4)
        cache.access_line(0, False)
        cache.access_line(4, False)  # same set (4 sets), conflicting tag
        assert cache.stats.evictions == 1
        assert cache.access_line(0, False) is False  # was evicted

    def test_associativity_prevents_conflict(self):
        cache = Cache("t", 2 * 4 * 32, 2, 32)  # 4 sets, 2-way
        cache.access_line(0, False)
        cache.access_line(4, False)
        assert cache.access_line(0, False) is True

    def test_lru_victim(self):
        cache = Cache("t", 2 * 1 * 32, 2, 32)  # 1 set, 2-way
        cache.access_line(0, False)
        cache.access_line(1, False)
        cache.access_line(0, False)  # 0 is now MRU
        cache.access_line(2, False)  # evicts LRU = 1
        assert cache.access_line(0, False) is True
        assert cache.access_line(1, False) is False

    def test_fifo_victim_ignores_recency(self):
        cache = Cache("t", 2 * 1 * 32, 2, 32, ReplacementPolicy.FIFO)
        cache.access_line(0, False)
        cache.access_line(1, False)
        cache.access_line(0, False)  # touch does not move 0 in FIFO
        cache.access_line(2, False)  # evicts oldest = 0
        assert cache.access_line(1, False) is True
        assert cache.access_line(0, False) is False

    def test_random_policy_bounded(self):
        cache = Cache("t", 4 * 1 * 32, 4, 32, ReplacementPolicy.RANDOM, seed=7)
        for line in range(16):
            cache.access_line(line, False)
        assert cache.stats.evictions == 12


class TestWriteback:
    def test_dirty_eviction_counts_writeback(self):
        cache = _direct_mapped(lines=4)
        cache.access_line(0, True)  # dirty
        cache.access_line(4, False)  # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = _direct_mapped(lines=4)
        cache.access_line(0, False)
        cache.access_line(4, False)
        assert cache.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = _direct_mapped(lines=4)
        cache.access_line(0, False)
        cache.access_line(0, True)  # hit, mark dirty
        cache.access_line(4, False)  # evict -> writeback
        assert cache.stats.writebacks == 1

    def test_flush_reports_dirty_lines(self):
        cache = _direct_mapped()
        cache.access_line(0, True)
        cache.access_line(1, True)
        assert cache.flush() == 2
        assert not cache.contains(0)


class TestByteAccess:
    def test_within_line_single_access(self):
        cache = _direct_mapped()
        hits, misses = cache.access(0, 4, False)
        assert (hits, misses) == (0, 1)

    def test_straddling_access_touches_two_lines(self):
        cache = _direct_mapped()
        hits, misses = cache.access(30, 4, False)  # crosses 32B boundary
        assert misses == 2

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            _direct_mapped().access(0, 0, False)

    def test_lines_of(self):
        cache = _direct_mapped()
        assert list(cache.lines_of(30, 4)) == [0, 1]

    def test_contains(self):
        cache = _direct_mapped()
        cache.access(64, 4, False)
        assert cache.contains(64)
        assert not cache.contains(0)


class TestSpatialLocalitySignal:
    def test_sequential_beats_strided(self):
        """The core phenomenon the paper exploits: walking memory
        sequentially has a far lower miss rate than striding."""
        sequential = Cache("s", 8 * 1024, 2, 32)
        for address in range(0, 4096, 4):
            sequential.access(address, 4, False)
        strided = Cache("t", 8 * 1024, 2, 32)
        for address in range(0, 4096 * 64, 256):
            strided.access(address, 4, False)
        assert sequential.stats.miss_rate < 0.2
        assert strided.stats.miss_rate > 0.9

"""Tests for the service's 'evaluate' request kind."""

import pytest

from repro.cachesim.hierarchy import HierarchyConfig
from repro.ir.parser import parse_program
from repro.layout.layout import column_major, row_major
from repro.service.cache import ResultCache
from repro.service.evaluate import (
    EvaluationRequest,
    EvaluationResult,
    EvaluationService,
    parse_hierarchy_overrides,
    run_evaluation_batch,
)
from repro.service.portfolio import PortfolioConfig

SOURCE = """
array B[64][64]
array OUT[64][64]
nest walk {
    for i = 0 .. 63 { for j = 0 .. 63 { OUT[i][j] = B[j][i] } }
}
"""


def _program(name="walk-prog"):
    from dataclasses import replace

    return replace(parse_program(SOURCE), name=name)


def _config():
    return PortfolioConfig(schemes=("enhanced",), parallel=False)


class TestParseHierarchyOverrides:
    def test_overrides_applied(self):
        config = parse_hierarchy_overrides("l1_size=16384, l2_latency=9")
        assert config.l1_size == 16384
        assert config.l2_latency == 9
        assert config.l2_size == HierarchyConfig().l2_size

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown hierarchy field"):
            parse_hierarchy_overrides("l3_size=1024")

    def test_bad_integer_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            parse_hierarchy_overrides("l1_size=big")

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            parse_hierarchy_overrides("l1_size=3000")


class TestEvaluationService:
    def test_optimize_then_evaluate(self):
        service = EvaluationService(config=_config())
        result = service.evaluate(EvaluationRequest(program=_program()))
        assert result.cost_model == "simulated"
        assert result.unit == "cycles"
        assert result.value > 0
        assert result.winner == "enhanced"
        assert result.layouts["B"] == column_major(2)
        assert "cache_report" in result.details

    def test_explicit_layouts_skip_optimization(self):
        service = EvaluationService(config=_config())
        layouts = {"B": row_major(2), "OUT": row_major(2)}
        result = service.evaluate(
            EvaluationRequest(program=_program(), layouts=layouts)
        )
        assert result.winner is None
        assert result.layouts == layouts

    def test_per_request_hierarchy_changes_the_price(self):
        service = EvaluationService(config=_config())
        layouts = {"B": row_major(2), "OUT": column_major(2)}
        paper = service.evaluate(
            EvaluationRequest(program=_program(), layouts=layouts)
        )
        slow_memory = service.evaluate(
            EvaluationRequest(
                program=_program(),
                layouts=layouts,
                hierarchy=HierarchyConfig(memory_latency=300),
            )
        )
        assert slow_memory.value > paper.value

    def test_analytic_and_weighted_models_served(self):
        service = EvaluationService(config=_config())
        for model, unit in (
            ("analytic", "est-misses"),
            ("weighted", "violated-weight"),
        ):
            result = service.evaluate(
                EvaluationRequest(program=_program(), cost_model=model)
            )
            assert result.cost_model == model
            assert result.unit == unit

    def test_results_cached_by_hierarchy(self, tmp_path):
        cache = ResultCache(capacity=64, path=str(tmp_path / "cache.json"))
        service = EvaluationService(config=_config(), cache=cache)
        request = EvaluationRequest(program=_program())
        cold = service.evaluate(request)
        warm = service.evaluate(request)
        assert not cold.from_cache and warm.from_cache
        assert warm.value == cold.value
        # A different machine model must NOT hit the same entry.
        other = service.evaluate(
            EvaluationRequest(
                program=_program(),
                hierarchy=HierarchyConfig(l2_latency=9),
            )
        )
        assert not other.from_cache
        assert other.value != cold.value

    def test_round_trip_serialization(self):
        service = EvaluationService(config=_config())
        result = service.evaluate(EvaluationRequest(program=_program()))
        clone = EvaluationResult.from_dict(result.to_dict())
        assert clone.value == result.value
        assert clone.layouts == result.layouts
        assert clone.winner == result.winner

    def test_batch_front_end(self):
        results = run_evaluation_batch(
            [
                EvaluationRequest(program=_program("p1")),
                EvaluationRequest(
                    program=_program("p2"), cost_model="analytic"
                ),
            ],
            config=_config(),
        )
        assert [r.cost_model for r in results] == ["simulated", "analytic"]

    def test_batch_worker_pool_matches_sequential(self):
        requests = [
            EvaluationRequest(program=_program("p1")),
            EvaluationRequest(program=_program("p2"), cost_model="analytic"),
        ]
        sequential = run_evaluation_batch(requests, config=_config())
        pooled = run_evaluation_batch(requests, config=_config(), workers=2)
        assert [r.value for r in pooled] == [r.value for r in sequential]
        assert [r.program for r in pooled] == ["p1", "p2"]

    def test_batch_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            run_evaluation_batch([], workers=0)

    def test_cache_hit_reports_lookup_latency(self, tmp_path):
        cache = ResultCache(capacity=16, path=str(tmp_path / "cache.json"))
        service = EvaluationService(config=_config(), cache=cache)
        request = EvaluationRequest(program=_program())
        cold = service.evaluate(request)
        warm = service.evaluate(request)
        assert warm.from_cache
        assert warm.seconds < cold.seconds

    def test_bad_sampling_cap_rejected(self):
        with pytest.raises(ValueError, match="max_iterations_per_nest"):
            EvaluationRequest(program=_program(), max_iterations_per_nest=0)

    def test_sampling_cap_rejected_for_non_simulated(self):
        with pytest.raises(ValueError, match="does not simulate"):
            EvaluationRequest(
                program=_program(),
                cost_model="analytic",
                max_iterations_per_nest=100,
            )

    def test_cold_evaluate_reuses_cached_portfolio_result(self, tmp_path):
        """A new machine model misses the evaluation cache but must
        reuse the cached optimization (the expensive half)."""
        cache = ResultCache(capacity=64, path=str(tmp_path / "cache.json"))
        first = run_evaluation_batch(
            [EvaluationRequest(program=_program())],
            config=_config(),
            cache=cache,
        )[0]
        hits_before = cache.stats.hits
        second = run_evaluation_batch(
            [
                EvaluationRequest(
                    program=_program(),
                    hierarchy=HierarchyConfig(l2_latency=9),
                )
            ],
            config=_config(),
            cache=cache,
        )[0]
        assert not second.from_cache  # different machine => fresh score
        assert second.value != first.value
        assert cache.stats.hits > hits_before  # ...but the race was reused

    def test_hierarchy_override_rejected_for_weighted(self):
        with pytest.raises(ValueError, match="does not use a cache hierarchy"):
            EvaluationRequest(
                program=_program(),
                cost_model="weighted",
                hierarchy=HierarchyConfig(),
            )

    def test_hierarchy_line_size_reaches_analytic_model(self):
        service = EvaluationService(config=_config())
        layouts = {"B": column_major(2), "OUT": row_major(2)}
        narrow = service.evaluate(
            EvaluationRequest(
                program=_program(),
                cost_model="analytic",
                layouts=layouts,
                hierarchy=HierarchyConfig(l1_line=16),
            )
        )
        wide = service.evaluate(
            EvaluationRequest(
                program=_program(),
                cost_model="analytic",
                layouts=layouts,
                hierarchy=HierarchyConfig(l1_line=64),
            )
        )
        # Spatial locality is priced per line: narrower lines => more
        # estimated misses.
        assert narrow.value > wide.value


class TestCliEvaluate:
    def test_cli_evaluate_smoke(self, capsys):
        from repro.service.cli import main

        code = main(
            [
                "--programs",
                "MxM",
                "--evaluate",
                "--sequential",
                "--portfolio",
                "enhanced",
                "--no-cache",
                "--sim-cap",
                "2000",
                "--hierarchy",
                "l2_latency=9",
                "-v",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "evaluate [simulated]" in output
        assert "cycles" in output
        assert "hit rates" in output

    def test_cli_rejects_unknown_cost_model(self):
        from repro.service.cli import main

        with pytest.raises(SystemExit, match="unknown cost model"):
            main(["--programs", "MxM", "--evaluate", "--cost-model", "magic"])

    def test_cli_rejects_bad_hierarchy(self):
        from repro.service.cli import main

        with pytest.raises(SystemExit, match="unknown hierarchy field"):
            main(["--programs", "MxM", "--evaluate", "--hierarchy", "l9=1"])

    def test_cli_rejects_bad_sim_cap_before_any_work(self):
        from repro.service.cli import main

        with pytest.raises(SystemExit, match="--sim-cap"):
            main(["--programs", "MxM", "--evaluate", "--sim-cap", "0"])

    def test_cli_rejects_hierarchy_for_weighted(self):
        from repro.service.cli import main

        with pytest.raises(SystemExit, match="does not use a cache hierarchy"):
            main(
                [
                    "--programs",
                    "MxM",
                    "--evaluate",
                    "--cost-model",
                    "weighted",
                    "--hierarchy",
                    "l1_size=4096",
                ]
            )

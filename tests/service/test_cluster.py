"""Cluster tier: routing front end, failover, cache peering, roll-up."""

import asyncio
import contextlib
import json
import os
import socket
import threading
import time

import pytest

from repro.ir.parser import parse_program
from repro.obs.metrics import MetricsRegistry
from repro.service.cluster import ClusterConfig, ClusterRouter
from repro.service.daemon import DaemonConfig, SolverDaemon
from repro.service.fingerprint import request_fingerprint
from repro.service.portfolio import PortfolioConfig
from repro.service.routing import HashRing
from repro.service.stream import DaemonClient, solve_request

_TEMPLATE = """
array Q1[{rows}][260]
array Q2[{rows}][260]
nest fig2 {{
    for i1 = 0 .. 259 {{
        for i2 = 0 .. 259 {{
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }}
    }}
}}
"""


def _program(rows: int, name: str = "program"):
    return parse_program(_TEMPLATE.format(rows=rows), name=name)


def _fast_config() -> PortfolioConfig:
    return PortfolioConfig(schemes=("enhanced",), parallel=False)


class _FakeMember:
    """A scriptable JSON-lines server impersonating a daemon member.

    The handler maps a decoded request payload to a response dict (the
    id is filled in here).  ``die_after`` closes each connection after
    that many responses -- the transient-failure lever.
    """

    def __init__(self, tmp_path, name: str, handler=None, die_after=None):
        self.path = str(tmp_path / f"{name}.sock")
        self.handler = handler or self._default_handler
        self.die_after = die_after
        self.served: list[dict] = []
        self.connections = 0
        self._server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._server.bind(self.path)
        self._server.listen(8)
        self._closing = False
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _default_handler(self, payload: dict) -> dict:
        kind = payload.get("kind")
        if kind == "ping":
            return {"ok": True, "kind": "ping", "result": {"member": self.path}}
        if kind == "stats":
            return {
                "ok": True,
                "kind": "stats",
                "result": {
                    "counters": {"requests": len(self.served)},
                    "engines": {},
                    "split": {},
                    "peer": {"hits": 1},
                    "cache": {"entries": 2, "bytes_on_disk": 10},
                },
            }
        if kind == "metrics" and payload.get("raw"):
            registry = MetricsRegistry()
            registry.counter(
                "repro_test_total", help="per-member test counter"
            ).inc(5)
            return {
                "ok": True,
                "kind": "metrics",
                "result": {"snapshot": registry.snapshot()},
            }
        if kind == "shutdown":
            return {"ok": True, "kind": "shutdown"}
        return {
            "ok": True,
            "kind": kind,
            "from_cache": False,
            "result": {"member": self.path, "kind": kind},
        }

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                connection, _ = self._server.accept()
            except OSError:
                return
            self.connections += 1
            threading.Thread(
                target=self._serve, args=(connection,), daemon=True
            ).start()

    def _serve(self, connection) -> None:
        answered = 0
        reader = connection.makefile("rb")
        try:
            for line in reader:
                if self._closing:
                    # close() must kill live connections too, or a
                    # "dead" member would keep answering its old ones.
                    break
                if not line.strip():
                    continue
                payload = json.loads(line)
                self.served.append(payload)
                response = self.handler(payload)
                response["id"] = payload.get("id")
                connection.sendall(
                    (json.dumps(response) + "\n").encode("utf-8")
                )
                answered += 1
                if self.die_after is not None and answered >= self.die_after:
                    break
        except (OSError, ValueError):
            pass
        finally:
            reader.close()
            connection.close()

    def close(self) -> None:
        self._closing = True
        self._server.close()
        with contextlib.suppress(OSError):
            os.unlink(self.path)


def _run_router(router: ClusterRouter, address: str) -> threading.Thread:
    thread = threading.Thread(
        target=lambda: asyncio.run(router.serve_address(address)),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 30.0
    while not os.path.exists(address):
        if time.monotonic() > deadline:  # pragma: no cover
            raise TimeoutError("router socket never appeared")
        time.sleep(0.02)
    return thread


class TestRouterWithFakeMembers:
    def test_requests_route_to_the_ring_owner(self, tmp_path):
        members = [_FakeMember(tmp_path, f"m{i}") for i in range(3)]
        addresses = tuple(m.path for m in members)
        router = ClusterRouter(ClusterConfig(members=addresses))
        router_sock = str(tmp_path / "router.sock")
        thread = _run_router(router, router_sock)
        try:
            ring = HashRing(addresses)
            with DaemonClient(router_sock) as client:
                program = _program(260)
                fingerprint = request_fingerprint(program, client._options)
                response = client.request(solve_request(program))
                assert response["ok"]
                owner = ring.owner(fingerprint)
                owner_member = next(m for m in members if m.path == owner)
                assert any(
                    p.get("kind") == "solve" for p in owner_member.served
                )
                with DaemonClient(router_sock) as shut:
                    shut.shutdown()
        finally:
            thread.join(timeout=15)
            for member in members:
                member.close()
        assert router.counters["route_hits"] >= 1
        assert router.counters["errors"] == 0

    def test_failover_to_replica_when_owner_is_down(self, tmp_path):
        members = [_FakeMember(tmp_path, f"m{i}") for i in range(3)]
        addresses = tuple(m.path for m in members)
        ring = HashRing(addresses)
        program = _program(260)
        router = ClusterRouter(
            ClusterConfig(
                members=addresses,
                replicas=2,
                retries=1,
                backoff_seconds=0.0,
                request_timeout=10.0,
            )
        )
        router_sock = str(tmp_path / "router.sock")
        thread = _run_router(router, router_sock)
        try:
            with DaemonClient(router_sock) as client:
                fingerprint = request_fingerprint(program, client._options)
                owner = ring.owner(fingerprint)
                replica = ring.preference(fingerprint, 2)[1]
                # Kill the owner before the request ever lands.
                next(m for m in members if m.path == owner).close()
                response = client.request(solve_request(program))
                assert response["ok"]
                replica_member = next(
                    m for m in members if m.path == replica
                )
                assert any(
                    p.get("kind") == "solve" for p in replica_member.served
                )
                client.shutdown()
        finally:
            thread.join(timeout=15)
            for member in members:
                member.close()
        assert router.counters["failovers"] >= 1
        assert router.counters["member_down"] >= 1
        assert router.counters["errors"] == 0

    def test_stats_roll_up_sums_members(self, tmp_path):
        members = [_FakeMember(tmp_path, f"m{i}") for i in range(2)]
        addresses = tuple(m.path for m in members)
        router = ClusterRouter(ClusterConfig(members=addresses))
        router_sock = str(tmp_path / "router.sock")
        thread = _run_router(router, router_sock)
        try:
            with DaemonClient(router_sock) as client:
                stats = client.stats()
                client.shutdown()
        finally:
            thread.join(timeout=15)
            for member in members:
                member.close()
        assert set(stats["members"]) == set(addresses)
        assert stats["aggregate"]["peer"]["hits"] == 2  # 1 per member
        assert stats["aggregate"]["cache"]["entries"] == 4
        assert stats["aggregate"]["cache"]["bytes_on_disk"] == 20
        assert stats["router"]["counters"]["requests"] >= 1

    def test_metrics_roll_up_merges_member_snapshots(self, tmp_path):
        members = [_FakeMember(tmp_path, f"m{i}") for i in range(3)]
        addresses = tuple(m.path for m in members)
        router = ClusterRouter(ClusterConfig(members=addresses))
        router_sock = str(tmp_path / "router.sock")
        thread = _run_router(router, router_sock)
        try:
            with DaemonClient(router_sock) as client:
                text = client.metrics()
                client.shutdown()
        finally:
            thread.join(timeout=15)
            for member in members:
                member.close()
        # 3 members x 5 -- merge_snapshot sums, it never overwrites.
        assert "repro_test_total 15" in text
        assert "repro_cluster_members 3" in text
        assert "repro_cluster_members_reachable 3" in text
        assert "repro_cluster_router_total" in text

    def test_router_ping_identifies_itself(self, tmp_path):
        members = [_FakeMember(tmp_path, "m0")]
        router = ClusterRouter(
            ClusterConfig(members=(members[0].path,), replicas=1)
        )
        router_sock = str(tmp_path / "router.sock")
        thread = _run_router(router, router_sock)
        try:
            with DaemonClient(router_sock) as client:
                hello = client.ping()
                client.shutdown()
        finally:
            thread.join(timeout=15)
            members[0].close()
        assert hello["result"]["role"] == "router"
        assert hello["result"]["members"] == [members[0].path]


class TestClientSideRouting:
    def test_multi_address_client_picks_the_owner(self, tmp_path):
        members = [_FakeMember(tmp_path, f"m{i}") for i in range(3)]
        addresses = [m.path for m in members]
        program = _program(260)
        with DaemonClient(addresses) as client:
            fingerprint = request_fingerprint(program, client._options)
            owner = HashRing(addresses).owner(fingerprint)
            response = client.request(solve_request(program))
            assert response["ok"]
        owner_member = next(m for m in members if m.path == owner)
        assert any(p.get("kind") == "solve" for p in owner_member.served)
        for member in members:
            member.close()

    def test_client_fails_over_through_the_ring(self, tmp_path):
        members = [_FakeMember(tmp_path, f"m{i}") for i in range(3)]
        addresses = [m.path for m in members]
        program = _program(260)
        with DaemonClient(addresses) as client:
            fingerprint = request_fingerprint(program, client._options)
            owner = HashRing(addresses).owner(fingerprint)
            next(m for m in members if m.path == owner).close()
            response = client.request(solve_request(program))
            assert response["ok"]
            served_by = response["result"]["member"]
            assert served_by != owner
            assert served_by in addresses
        for member in members:
            member.close()

    def test_control_requests_go_to_the_primary(self, tmp_path):
        members = [_FakeMember(tmp_path, f"m{i}") for i in range(2)]
        addresses = [m.path for m in members]
        with DaemonClient(addresses) as client:
            assert client.ping()["ok"]
        assert any(p.get("kind") == "ping" for p in members[0].served)
        assert not members[1].served
        for member in members:
            member.close()

    def test_request_member_targets_exactly_one(self, tmp_path):
        members = [_FakeMember(tmp_path, f"m{i}") for i in range(2)]
        addresses = [m.path for m in members]
        with DaemonClient(addresses) as client:
            response = client.request_member(addresses[1], {"kind": "ping"})
            assert response["ok"]
            with pytest.raises(ValueError, match="not a configured member"):
                client.request_member("/nope.sock", {"kind": "ping"})
        assert any(p.get("kind") == "ping" for p in members[1].served)
        for member in members:
            member.close()


class TestClientTransientErrorHardening:
    def test_reconnect_and_resend_mid_batch(self, tmp_path):
        """The daemon dies after the first response of a pipelined
        batch; the client reconnects and resends the remainder."""
        member = _FakeMember(tmp_path, "flaky", die_after=1)
        with DaemonClient(member.path) as client:
            responses = client.request_many(
                [{"kind": "ping"}, {"kind": "ping"}, {"kind": "ping"}]
            )
        assert all(r["ok"] for r in responses)
        assert member.connections >= 2  # at least one reconnect happened
        member.close()

    def test_retry_disabled_raises_to_the_caller(self, tmp_path):
        member = _FakeMember(tmp_path, "flaky", die_after=1)
        with DaemonClient(member.path, retry=False) as client:
            with pytest.raises(ConnectionError):
                client.request_many(
                    [{"kind": "ping"}, {"kind": "ping"}, {"kind": "ping"}]
                )
        member.close()

    def test_dead_daemon_still_raises(self, tmp_path):
        member = _FakeMember(tmp_path, "gone")
        client = DaemonClient(member.path)
        member.close()
        with pytest.raises(ConnectionError):
            client.request_many([{"kind": "ping"}, {"kind": "ping"}])
        client.close()


class _MemberHarness:
    """A real clustered SolverDaemon in a background thread."""

    def __init__(self, address: str, peers):
        self.address = address
        self.daemon = SolverDaemon(
            config=_fast_config(),
            daemon_config=DaemonConfig(
                workers=1,
                shards=2,
                peers=tuple(peers),
                self_address=address,
                peer_timeout=10.0,
            ),
        )
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.serve_unix(self.address)),
            daemon=True,
        )
        self.thread.start()
        deadline = time.monotonic() + 30.0
        while not os.path.exists(self.address):
            if time.monotonic() > deadline:  # pragma: no cover
                raise TimeoutError("member socket never appeared")
            time.sleep(0.02)

    def stop(self) -> None:
        if self.thread.is_alive():
            try:
                with DaemonClient(self.address, timeout=30.0) as client:
                    client.shutdown()
            except OSError:  # pragma: no cover - already gone
                pass
        self.thread.join(timeout=30)


@pytest.fixture
def member_pair(tmp_path):
    addresses = [str(tmp_path / "a.sock"), str(tmp_path / "b.sock")]
    members = [_MemberHarness(address, addresses) for address in addresses]
    try:
        yield addresses, members
    finally:
        for member in members:
            member.stop()


class TestCachePeering:
    def _owner_and_other(self, addresses, program):
        ring = HashRing(addresses)
        fingerprint = request_fingerprint(program, None)
        owner = ring.owner(fingerprint)
        other = next(a for a in addresses if a != owner)
        return fingerprint, owner, other

    def test_non_owner_serves_from_the_owners_cache(self, member_pair):
        addresses, members = member_pair
        program = _program(260)
        fingerprint, owner, other = self._owner_and_other(
            addresses, program
        )
        # Warm the owner the way the router would: solve it there.
        with DaemonClient(owner, timeout=120.0) as client:
            first = client.solve(program)
        assert first["ok"] and not first["from_cache"]
        # The *other* member now serves the same request via one
        # cache_lookup hop to the owner -- without solving.
        with DaemonClient(other, timeout=120.0) as client:
            second = client.solve(program)
        assert second["ok"]
        assert second["from_cache"]
        assert second["peer"] == owner
        assert second["result"] == first["result"]
        owner_daemon = next(
            m.daemon for m in members if m.address == owner
        )
        other_daemon = next(
            m.daemon for m in members if m.address == other
        )
        assert other_daemon.peer_counters["hits"] == 1
        assert owner_daemon.peer_counters["lookups_served"] == 1
        # The entry still lives exactly once: the peer hit was served,
        # not copied.
        assert len(other_daemon.cache) == 0

    def test_peer_miss_falls_back_to_local_solve(self, member_pair):
        addresses, members = member_pair
        program = _program(520)
        fingerprint, owner, other = self._owner_and_other(
            addresses, program
        )
        with DaemonClient(other, timeout=120.0) as client:
            response = client.solve(program)
        assert response["ok"] and not response["from_cache"]
        other_daemon = next(
            m.daemon for m in members if m.address == other
        )
        assert other_daemon.peer_counters["misses"] == 1

    def test_cache_lookup_kind_answers_local_only(self, member_pair):
        addresses, members = member_pair
        with DaemonClient(addresses[0], timeout=30.0) as client:
            probe = client.cache_lookup("0" * 32, "no-such-token")
        assert probe["hit"] is False
        daemon = members[0].daemon
        # An inbound lookup never triggers an outbound one: one hop.
        assert daemon.peer_counters["lookups_served"] == 1
        assert daemon.peer_counters["hits"] == 0
        assert daemon.peer_counters["misses"] == 0

    def test_owner_fingerprints_skip_the_peer_hop(self, member_pair):
        addresses, members = member_pair
        program = _program(260)
        fingerprint, owner, other = self._owner_and_other(
            addresses, program
        )
        with DaemonClient(owner, timeout=120.0) as client:
            response = client.solve(program)
        assert response["ok"]
        owner_daemon = next(
            m.daemon for m in members if m.address == owner
        )
        assert owner_daemon.peer_counters["hits"] == 0
        assert owner_daemon.peer_counters["misses"] == 0

    def test_stats_surface_peer_and_cluster_sections(self, member_pair):
        addresses, members = member_pair
        with DaemonClient(addresses[0], timeout=30.0) as client:
            stats = client.stats()
            hello = client.ping()
        assert stats["peer"] == {
            "hits": 0,
            "misses": 0,
            "errors": 0,
            "lookups_served": 0,
        }
        assert stats["cluster"]["self"] == addresses[0]
        assert sorted(stats["cluster"]["members"]) == sorted(addresses)
        assert "bytes_on_disk" in stats["cache"]
        assert hello["result"]["cluster"]["self"] == addresses[0]


class TestClusterConfigValidation:
    def test_members_required(self):
        with pytest.raises(ValueError, match="at least one member"):
            ClusterConfig(members=())

    def test_positive_knobs(self):
        with pytest.raises(ValueError, match="replicas"):
            ClusterConfig(members=("a",), replicas=0)
        with pytest.raises(ValueError, match="retries"):
            ClusterConfig(members=("a",), retries=-1)

    def test_daemon_cluster_fields(self):
        with pytest.raises(ValueError, match="self_address"):
            DaemonConfig(peers=("a", "b"))
        with pytest.raises(ValueError, match="missing from peers"):
            DaemonConfig(peers=("a", "b"), self_address="c")

"""Daemon observability: request traces, worker telemetry, metrics kind."""

import asyncio
import json
import os
import threading
import time

import pytest

from repro.ir.parser import parse_program
from repro.obs import parse_prometheus_text, span_from_dict
from repro.service.daemon import DaemonConfig, SolverDaemon
from repro.service.portfolio import PortfolioConfig
from repro.service.stream import DaemonClient, solve_request

_TEMPLATE = """
array Q1[{rows}][260]
array Q2[{rows}][260]
nest fig2 {{
    for i1 = 0 .. 259 {{
        for i2 = 0 .. 259 {{
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }}
    }}
}}
"""


def _program(rows: int, name: str = "program"):
    return parse_program(_TEMPLATE.format(rows=rows), name=name)


def _fast_config() -> PortfolioConfig:
    return PortfolioConfig(schemes=("enhanced",), parallel=False)


class _Harness:
    """A daemon served from a background thread on a tmp unix socket."""

    def __init__(self, tmp_path, trace_log=None):
        self.daemon = SolverDaemon(
            config=_fast_config(),
            daemon_config=DaemonConfig(workers=1, shards=2, max_inflight=8),
            trace_log=trace_log,
        )
        self.socket_path = str(tmp_path / "daemon.sock")
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.serve_unix(self.socket_path)),
            daemon=True,
        )
        self.thread.start()
        deadline = time.monotonic() + 30.0
        while not os.path.exists(self.socket_path):
            if time.monotonic() > deadline:  # pragma: no cover
                raise TimeoutError("daemon socket never appeared")
            time.sleep(0.02)

    def client(self) -> DaemonClient:
        return DaemonClient(self.socket_path, timeout=120.0)

    def stop(self) -> None:
        if self.thread.is_alive():
            try:
                with self.client() as client:
                    client.shutdown()
            except OSError:  # pragma: no cover - already gone
                pass
        self.thread.join(timeout=15)
        assert not self.thread.is_alive()


@pytest.fixture
def harness(tmp_path):
    harness = _Harness(tmp_path)
    try:
        yield harness
    finally:
        harness.stop()


class TestRequestTraces:
    def test_untraced_response_carries_no_trace(self, harness):
        with harness.client() as client:
            response = client.solve(_program(300, "plain"))
        assert response["ok"]
        assert "trace" not in response

    def test_traced_miss_has_lifecycle_phases_and_worker_subspans(
        self, harness
    ):
        with harness.client() as client:
            response = client.solve(_program(301, "traced"), trace=True)
        assert response["ok"] and not response["from_cache"]
        root = span_from_dict(response["trace"])
        assert root.name == "request:solve"
        assert root.attributes["from_cache"] is False
        phases = [child.name for child in root.children]
        assert phases == [
            "decode",
            "fingerprint",
            "cache_lookup",
            "dispatch",
            "encode",
        ]
        # The worker's captured sub-tree is re-parented under dispatch.
        dispatch = root.find("dispatch")
        worker = dispatch.find("worker_solve")
        assert worker is not None
        assert worker.find("build_network") is not None  # portfolio layer
        assert worker.find("race") is not None
        # The phase budget accounts for the measured latency: every
        # await in the handler happens inside a phase, so the direct
        # children must sum to (nearly) the reported seconds.
        total = sum(root.phase_seconds().values())
        assert total <= response["seconds"] * 1.10
        assert total >= response["seconds"] * 0.50

    def test_traced_hit_reports_cache_lookup_without_dispatch(self, harness):
        program = _program(302, "warm")
        with harness.client() as client:
            client.solve(program)
            response = client.solve(program, trace=True)
        assert response["from_cache"]
        root = span_from_dict(response["trace"])
        assert root.attributes["from_cache"] is True
        names = [child.name for child in root.children]
        assert "cache_lookup" in names
        assert "dispatch" not in names

    def test_trace_log_tees_every_request(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        harness = _Harness(tmp_path, trace_log=str(trace_path))
        try:
            with harness.client() as client:
                client.solve(_program(303, "teed"))
                client.solve(_program(303, "teed"))  # cache hit
        finally:
            harness.stop()
        lines = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line.strip()
        ]
        assert len(lines) == 2
        for payload in lines:
            tree = span_from_dict(payload)
            assert tree.name == "request:solve"
            assert tree.find("cache_lookup") is not None
        assert lines[0]["attributes"]["from_cache"] is False
        assert lines[1]["attributes"]["from_cache"] is True


class TestMetricsKind:
    def test_exposition_parses_and_covers_every_subsystem(self, harness):
        program = _program(304, "metered")
        with harness.client() as client:
            client.solve(program)
            client.solve(program)
            text = client.metrics()
        parsed = parse_prometheus_text(text)
        series = {name for name, _, _ in parsed["samples"]}
        # Daemon lifecycle.
        assert parsed["types"]["repro_request_seconds"] == "histogram"
        assert "repro_request_seconds_count" in series
        assert "repro_daemon_uptime_seconds" in series
        # Cache, per shard.
        assert "repro_cache_hits_total" in series
        assert "repro_cache_misses_total" in series
        assert "repro_cache_evictions_total" in series
        # Worker-shipped deltas: portfolio and solver layers.
        assert "repro_portfolio_requests_total" in series
        assert "repro_portfolio_wins_total" in series
        assert "repro_solver_solves_total" in series

    def test_cache_hit_counter_strictly_increases_across_scrapes(
        self, harness
    ):
        program = _program(305, "recounted")

        def cache_hits(text: str) -> float:
            parsed = parse_prometheus_text(text)
            return sum(
                value
                for name, _, value in parsed["samples"]
                if name == "repro_cache_hits_total"
            )

        with harness.client() as client:
            client.solve(program)
            client.solve(program)
            first = cache_hits(client.metrics())
            client.solve(program)
            second = cache_hits(client.metrics())
        assert first >= 1
        assert second > first

    def test_request_latency_histogram_counts_requests(self, harness):
        with harness.client() as client:
            client.solve(_program(306, "counted"))
            text = client.metrics()
        parsed = parse_prometheus_text(text)
        counts = [
            (labels, value)
            for name, labels, value in parsed["samples"]
            if name == "repro_request_seconds_count"
        ]
        assert any(
            labels.get("kind") == "solve" and value >= 1
            for labels, value in counts
        )


class TestPassStats:
    def test_stats_expose_per_pass_breakdown(self, harness):
        """Worker pass clocks roll up into the daemon's stats view."""
        with harness.client() as client:
            response = client.solve(_program(310, "passes"))
            assert response["ok"] and not response["from_cache"]
            stats = client.stats()
        passes = stats["passes"]
        # A served miss runs the build and solve phases; this exact
        # program's network is satisfiable, so repair ran too.
        assert set(passes) >= {"build", "solve", "repair"}
        for entry in passes.values():
            assert entry["count"] >= 1
            assert entry["seconds"] >= 0.0
        # The per-pass clocks are nested inside the request: their sum
        # approximates (and cannot meaningfully exceed) the request's
        # end-to-end solve time.
        total = sum(entry["seconds"] for entry in passes.values())
        assert total <= response["seconds"] * 1.25

    def test_cache_hits_add_no_pass_time(self, harness):
        with harness.client() as client:
            client.solve(_program(311, "cold"))
            first = client.stats()["passes"]
            hit = client.solve(_program(311, "cold"))
            second = client.stats()["passes"]
        assert hit["from_cache"]
        assert first == second


class TestUptime:
    def test_uptime_is_monotonic_based(self, harness):
        before = time.monotonic()
        with harness.client() as client:
            stats = client.stats()
        # Started earlier in this test run: bounded by monotonic now.
        assert 0 < stats["uptime_seconds"] < time.monotonic() - before + 60.0

"""Sharded cache: routing, TTL, tolerant loads, concurrent persistence."""

import json
import multiprocessing
import os
import time

import pytest

from repro.service.cache import (
    ResultCache,
    ShardedResultCache,
    shard_index,
)


def _fp(value: int) -> str:
    """A hex fingerprint whose shard-keying *prefix* varies."""
    return f"{value:08x}" + "f" * 24


class TestShardRouting:
    def test_hex_fingerprints_spread_over_shards(self):
        indices = {shard_index(_fp(value), 4) for value in range(64)}
        assert indices == {0, 1, 2, 3}

    def test_non_hex_keys_still_route_deterministically(self):
        assert shard_index("fp-one", 4) == shard_index("fp-one", 4)
        assert 0 <= shard_index("fp-one", 4) < 4

    def test_routing_is_stable_across_instances(self):
        """Shard of a fingerprint must never move between runs."""
        cache_a = ShardedResultCache(shards=8)
        cache_b = ShardedResultCache(shards=8)
        for value in range(32):
            fingerprint = _fp(value)
            assert cache_a.shard_for(fingerprint) is cache_a._shards[
                shard_index(fingerprint, 8)
            ]
            assert shard_index(fingerprint, 8) == shard_index(fingerprint, 8)
            cache_b.put(fingerprint, "cfg", {"v": value})
        assert len(cache_b) == 32

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardedResultCache(shards=0)
        with pytest.raises(ValueError):
            shard_index("00", 0)


class TestShardedSemantics:
    def test_get_put_contains_len_clear(self):
        cache = ShardedResultCache(shards=4, capacity=8)
        assert cache.get("0abc", "cfg") is None
        cache.put("0abc", "cfg", {"v": 1})
        assert cache.get("0abc", "cfg") == {"v": 1}
        assert cache.contains("0abc", "cfg")
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_stats_aggregate_across_shards(self):
        cache = ShardedResultCache(shards=4)
        for value in range(16):
            fingerprint = _fp(value)
            cache.put(fingerprint, "cfg", {"v": value})
            cache.get(fingerprint, "cfg")
        cache.get("feedfeedfeedfeedfeedfeedfeedfeed", "cfg")
        stats = cache.stats
        assert stats.stores == 16
        assert stats.hits == 16
        assert stats.misses == 1
        per_shard = cache.shard_stats()
        assert len(per_shard) == 4
        assert sum(row["stores"] for row in per_shard) == 16
        assert sum(row["entries"] for row in per_shard) == len(cache)
        assert all("bytes_on_disk" in row for row in per_shard)

    def test_entry_counts_and_bytes_on_disk(self, tmp_path):
        """The cluster roll-up needs comparable per-member numbers:
        entry counts per shard and real persisted bytes."""
        directory = str(tmp_path / "cache.d")
        cache = ShardedResultCache(shards=4, directory=directory)
        assert cache.entry_counts() == [0, 0, 0, 0]
        assert cache.bytes_on_disk() == 0  # nothing persisted yet
        for value in range(16):
            cache.put(_fp(value), "cfg", {"v": value})
        assert sum(cache.entry_counts()) == 16
        cache.save()
        total = cache.bytes_on_disk()
        assert total > 0
        per_shard = cache.shard_stats()
        assert sum(row["bytes_on_disk"] for row in per_shard) == total
        on_disk = sum(
            os.path.getsize(os.path.join(directory, name))
            for name in os.listdir(directory)
            if name.endswith(".json")
        )
        assert total == on_disk

    def test_memory_only_cache_reports_zero_bytes(self):
        cache = ShardedResultCache(shards=2)
        cache.put(_fp(1), "cfg", {"v": 1})
        cache.save()
        assert cache.bytes_on_disk() == 0

    def test_capacity_is_per_shard(self):
        cache = ShardedResultCache(shards=2, capacity=2)
        for value in range(16):
            cache.put(_fp(value), "cfg", {"v": value})
        assert len(cache) <= 4
        assert cache.stats.evictions >= 12

    def test_persistence_layout_on_disk(self, tmp_path):
        directory = str(tmp_path / "cache.d")
        cache = ShardedResultCache(shards=3, directory=directory)
        for value in range(12):
            cache.put(_fp(value), "cfg", {"v": value})
        cache.save()
        files = sorted(
            name for name in os.listdir(directory) if name.endswith(".json")
        )
        assert files == ["shard-00.json", "shard-01.json", "shard-02.json"]

        reloaded = ShardedResultCache(shards=3, directory=directory)
        assert len(reloaded) == 12
        for value in range(12):
            assert reloaded.get(_fp(value), "cfg") == {"v": value}


class TestTtl:
    def test_expired_entry_is_a_miss(self):
        cache = ResultCache(capacity=4, ttl_seconds=0.05)
        cache.put("fp", "cfg", {"v": 1})
        assert cache.get("fp", "cfg") == {"v": 1}
        time.sleep(0.06)
        assert cache.get("fp", "cfg") is None
        assert cache.stats.expirations == 1
        assert not cache.contains("fp", "cfg")

    def test_expired_entries_dropped_on_load(self, tmp_path):
        path = str(tmp_path / "cache.json")
        writer = ResultCache(capacity=4, path=path)
        writer.put("fp", "cfg", {"v": 1})
        writer.save()
        time.sleep(0.06)
        reloaded = ResultCache(capacity=4, path=path, ttl_seconds=0.05)
        assert len(reloaded) == 0
        assert reloaded.stats.expirations == 1

    def test_ttl_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(ttl_seconds=0.0)

    def test_sharded_cache_applies_ttl(self):
        cache = ShardedResultCache(shards=2, ttl_seconds=0.05)
        cache.put("0abc", "cfg", {"v": 1})
        time.sleep(0.06)
        assert cache.get("0abc", "cfg") is None
        assert cache.stats.expirations == 1


class TestTolerantLoads:
    """Corrupt/truncated cache files are discarded and logged, not fatal."""

    def test_truncated_json_starts_cold_and_logs(self, tmp_path, caplog):
        path = tmp_path / "cache.json"
        good = ResultCache(capacity=4, path=str(path))
        good.put("fp", "cfg", {"v": 1})
        good.save()
        # Simulate a partial write: chop the file mid-payload.
        raw = path.read_text(encoding="utf-8")
        path.write_text(raw[: len(raw) // 2], encoding="utf-8")
        with caplog.at_level("WARNING", logger="repro.service.cache"):
            cache = ResultCache(capacity=4, path=str(path))
        assert len(cache) == 0
        assert any("discarding" in record.message for record in caplog.records)

    def test_binary_garbage_starts_cold(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_bytes(bytes(range(256)) * 16)  # undecodable as UTF-8
        assert len(ResultCache(path=str(path))) == 0

    def test_malformed_entries_are_skipped_not_fatal(self, tmp_path, caplog):
        path = tmp_path / "cache.json"
        payload = {
            "version": 2,
            "entries": [
                ["good|cfg", {"v": 1}, time.time()],
                ["missing-timestamp", {"v": 2}],
                "not-a-list",
                [3, {"v": 4}, 0.0],
            ],
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        with caplog.at_level("WARNING", logger="repro.service.cache"):
            cache = ResultCache(path=str(path))
        assert len(cache) == 1
        assert cache.get("good", "cfg") == {"v": 1}

    def test_version_mismatch_logs(self, tmp_path, caplog):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 1, "entries": []}), encoding="utf-8")
        with caplog.at_level("WARNING", logger="repro.service.cache"):
            assert len(ResultCache(path=str(path))) == 0
        assert any("format version" in record.message for record in caplog.records)


class TestMergeSave:
    def test_merge_save_keeps_other_writers_entries(self, tmp_path):
        path = str(tmp_path / "cache.json")
        first = ResultCache(capacity=8, path=path)
        first.put("fp1", "cfg", {"who": "first"})
        first.save(merge=True)

        second = ResultCache(capacity=8, path=path)  # sees fp1
        second.put("fp2", "cfg", {"who": "second"})
        second.save(merge=True)

        # "first" never saw fp2, but its merge-save must not erase it.
        first.put("fp3", "cfg", {"who": "first-again"})
        first.save(merge=True)

        reloaded = ResultCache(capacity=8, path=path)
        assert reloaded.get("fp1", "cfg") == {"who": "first"}
        assert reloaded.get("fp2", "cfg") == {"who": "second"}
        assert reloaded.get("fp3", "cfg") == {"who": "first-again"}

    def test_plain_save_still_overwrites(self, tmp_path):
        """clear() + save() must keep meaning 'empty the file'."""
        path = str(tmp_path / "cache.json")
        cache = ResultCache(capacity=8, path=path)
        cache.put("fp", "cfg", {"v": 1})
        cache.save()
        cache.clear()
        cache.save()
        assert len(ResultCache(capacity=8, path=path)) == 0


def _hammer_cache(path: str, label: int, entries: int) -> None:
    """Worker: insert entries and merge-save after every insert."""
    cache = ResultCache(capacity=4096, path=path)
    for index in range(entries):
        cache.put(f"{label:04d}-{index:04d}", "cfg", {"worker": label, "i": index})
        cache.save(merge=True)


def _hammer_shards(directory: str, label: int, entries: int) -> None:
    """Worker: insert into a sharded cache and merge-save repeatedly."""
    cache = ShardedResultCache(shards=4, capacity=4096, directory=directory)
    for index in range(entries):
        cache.put(f"{label:02x}{index:02x}{'0' * 28}", "cfg", {"w": label, "i": index})
        if index % 4 == 3:
            cache.save()
    cache.save()


def _read_forever(path: str, stop_path: str, failures: multiprocessing.Queue) -> None:
    """Worker: reload the cache file in a tight loop, recording torn reads."""
    while not os.path.exists(stop_path):
        cache = ResultCache(capacity=4096, path=path)
        for key in list(cache._entries):
            value = cache._entries[key]
            if not isinstance(value, dict) or "worker" not in value:
                failures.put(f"torn value for {key!r}: {value!r}")
                return


class TestMultiProcessSharing:
    """Two workers persisting to one path lose no entries and never
    serve a torn read (the satellite regression suite)."""

    ENTRIES = 24

    def test_concurrent_writers_lose_no_entries(self, tmp_path):
        path = str(tmp_path / "shared.json")
        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(target=_hammer_cache, args=(path, label, self.ENTRIES))
            for label in (1, 2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        final = ResultCache(capacity=4096, path=path)
        for label in (1, 2):
            for index in range(self.ENTRIES):
                value = final.get(f"{label:04d}-{index:04d}", "cfg")
                assert value == {"worker": label, "i": index}, (
                    f"lost entry {label}/{index}"
                )

    def test_concurrent_writers_never_produce_torn_reads(self, tmp_path):
        path = str(tmp_path / "shared.json")
        stop_path = str(tmp_path / "stop")
        context = multiprocessing.get_context("fork")
        failures: multiprocessing.Queue = context.Queue()
        reader = context.Process(
            target=_read_forever, args=(path, stop_path, failures)
        )
        writers = [
            context.Process(target=_hammer_cache, args=(path, label, self.ENTRIES))
            for label in (1, 2)
        ]
        reader.start()
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        open(stop_path, "w").close()
        reader.join(timeout=30)
        if reader.is_alive():  # pragma: no cover - stuck reader
            reader.terminate()
            reader.join()
        assert failures.empty(), failures.get()

    def test_concurrent_sharded_writers_lose_no_entries(self, tmp_path):
        directory = str(tmp_path / "cache.d")
        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(
                target=_hammer_shards, args=(directory, label, self.ENTRIES)
            )
            for label in (1, 2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        final = ShardedResultCache(shards=4, capacity=4096, directory=directory)
        assert len(final) == 2 * self.ENTRIES
        for label in (1, 2):
            for index in range(self.ENTRIES):
                key = f"{label:02x}{index:02x}{'0' * 28}"
                assert final.get(key, "cfg") == {"w": label, "i": index}

"""Fingerprint stability: insertion order must not matter, content must."""

import pytest

from repro.bench import BENCHMARK_NAMES, benchmark_build_options, build_benchmark
from repro.csp.network import ConstraintNetwork
from repro.ir.parser import parse_program
from repro.ir.program import Program
from repro.layout.layout import column_major, diagonal, row_major
from repro.opt.network_builder import BuildOptions, build_layout_network
from repro.service.fingerprint import (
    canonical_value_token,
    network_fingerprint,
    options_token,
    program_fingerprint,
    request_fingerprint,
)

FIGURE2 = """
array Q1[520][260]
array Q2[520][260]
nest fig2 {
    for i1 = 0 .. 259 {
        for i2 = 0 .. 259 {
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }
    }
}
"""


def _toy_network(variable_order, domain_orders, flip_orientation):
    """The same tiny network assembled in a configurable order."""
    network = ConstraintNetwork()
    domains = {
        "a": (row_major(2), column_major(2), diagonal()),
        "b": (column_major(2), diagonal()),
        "c": (row_major(2), diagonal()),
    }
    for name in variable_order:
        network.add_variable(name, domain_orders.get(name, domains[name]))
    pairs_ab = [
        (row_major(2), column_major(2)),
        (diagonal(), diagonal()),
    ]
    pairs_bc = [(column_major(2), row_major(2))]
    if flip_orientation:
        network.add_constraint("b", "a", [(b, a) for (a, b) in pairs_ab])
        network.add_constraint("c", "b", [(b, a) for (a, b) in pairs_bc])
    else:
        network.add_constraint("a", "b", pairs_ab)
        network.add_constraint("b", "c", pairs_bc)
    return network


class TestNetworkFingerprint:
    def test_insertion_order_is_irrelevant(self):
        """Permuted variable/domain/constraint insertion, flipped
        constraint orientation: identical fingerprints."""
        reference = _toy_network(("a", "b", "c"), {}, flip_orientation=False)
        permuted = _toy_network(
            ("c", "a", "b"),
            {"a": (diagonal(), row_major(2), column_major(2))},
            flip_orientation=True,
        )
        assert network_fingerprint(reference) == network_fingerprint(permuted)

    def test_content_changes_the_fingerprint(self):
        reference = _toy_network(("a", "b", "c"), {}, flip_orientation=False)
        shrunk = _toy_network(
            ("a", "b", "c"),
            {"c": (row_major(2),)},
            flip_orientation=False,
        )
        assert network_fingerprint(reference) != network_fingerprint(shrunk)

    def test_bench_suite_is_collision_free(self):
        """The five paper benchmarks give five distinct fingerprints."""
        options = benchmark_build_options()
        fingerprints = {
            network_fingerprint(
                build_layout_network(build_benchmark(name), options).network
            )
            for name in BENCHMARK_NAMES
        }
        assert len(fingerprints) == len(BENCHMARK_NAMES)

    def test_generic_value_networks_supported(self):
        """Fingerprinting also covers the int-valued random networks."""
        network = ConstraintNetwork()
        network.add_variable("x", (0, 1, 2))
        network.add_variable("y", (0, 1))
        network.add_constraint("x", "y", [(0, 1), (2, 0)])
        other = ConstraintNetwork()
        other.add_variable("y", (1, 0))
        other.add_variable("x", (2, 1, 0))
        other.add_constraint("y", "x", [(0, 2), (1, 0)])
        assert network_fingerprint(network) == network_fingerprint(other)


class TestProgramFingerprint:
    def test_stable_across_rebuilds(self):
        assert program_fingerprint(parse_program(FIGURE2)) == program_fingerprint(
            parse_program(FIGURE2)
        )

    def test_declaration_order_is_irrelevant(self):
        program = parse_program(FIGURE2)
        reordered = Program(
            program.name,
            tuple(reversed(program.arrays)),
            tuple(reversed(program.nests)),
        )
        assert program_fingerprint(program) == program_fingerprint(reordered)

    def test_name_is_excluded_but_structure_included(self):
        program = parse_program(FIGURE2, name="one")
        renamed = parse_program(FIGURE2, name="two")
        assert program_fingerprint(program) == program_fingerprint(renamed)
        changed = parse_program(FIGURE2.replace("Q2[i1+i2][i1]", "Q2[i1][i2]"))
        assert program_fingerprint(program) != program_fingerprint(changed)

    def test_bench_suite_is_collision_free(self):
        fingerprints = {
            program_fingerprint(build_benchmark(name)) for name in BENCHMARK_NAMES
        }
        assert len(fingerprints) == len(BENCHMARK_NAMES)


class TestRequestFingerprint:
    def test_options_are_part_of_the_key(self):
        program = parse_program(FIGURE2)
        plain = request_fingerprint(program, BuildOptions())
        skewed = request_fingerprint(program, BuildOptions(skew_factors=(1, 2)))
        assert plain != skewed

    def test_default_options_are_explicit_defaults(self):
        program = parse_program(FIGURE2)
        assert request_fingerprint(program) == request_fingerprint(
            program, BuildOptions()
        )

    def test_options_token_is_readable(self):
        token = options_token(benchmark_build_options())
        assert "skew=[1, 2, 3]" in token


class TestValueTokens:
    def test_layouts_and_lookalikes_stay_distinct(self):
        layout = row_major(2)
        assert canonical_value_token(layout) != canonical_value_token(layout.rows)
        assert canonical_value_token(1) != canonical_value_token("1")
        assert canonical_value_token(1) != canonical_value_token(True)
        assert canonical_value_token((1, 2)) == canonical_value_token((1, 2))

"""Wire-protocol round trips and request-line validation."""

import json

import pytest

from repro.bench import build_benchmark
from repro.ir.parser import parse_program
from repro.layout.layout import column_major, row_major
from repro.service.stream import (
    ProtocolError,
    decode_request,
    encode_response,
    error_response,
    evaluate_request,
    layouts_from_wire,
    layouts_to_wire,
    program_from_wire,
    program_to_wire,
    solve_request,
)

FIGURE2 = """
array Q1[520][260]
array Q2[520][260]
nest fig2 {
    for i1 = 0 .. 259 {
        for i2 = 0 .. 259 {
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }
    }
}
"""


class TestProgramWire:
    @pytest.mark.parametrize("name", ["MxM", "Radar"])
    def test_benchmark_roundtrip_is_exact(self, name):
        program = build_benchmark(name)
        clone = program_from_wire(program_to_wire(program))
        assert clone == program

    def test_parsed_program_roundtrip_is_exact(self):
        program = parse_program(FIGURE2, name="fig2-program")
        clone = program_from_wire(program_to_wire(program))
        assert clone == program
        assert clone.name == "fig2-program"

    def test_wire_form_is_json_encodable(self):
        wire = program_to_wire(build_benchmark("MxM"))
        clone = program_from_wire(json.loads(json.dumps(wire)))
        assert clone == build_benchmark("MxM")

    def test_malformed_program_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="malformed program"):
            program_from_wire({"name": "x", "arrays": [["A"]], "nests": []})

    def test_invalid_ir_raises_protocol_error(self):
        """IR-level validation failures surface as protocol errors."""
        wire = program_to_wire(parse_program(FIGURE2))
        wire["arrays"][0][1] = [-1, 4]  # non-positive extent
        with pytest.raises(ProtocolError):
            program_from_wire(wire)


class TestLayoutsWire:
    def test_roundtrip(self):
        layouts = {"A": row_major(2), "B": column_major(3)}
        assert layouts_from_wire(layouts_to_wire(layouts)) == layouts

    def test_malformed_layouts_raise(self):
        with pytest.raises(ProtocolError):
            layouts_from_wire({"A": {"rows": "nope"}})


class TestRequestLines:
    def test_solve_request_decodes(self):
        line = encode_response(solve_request(parse_program(FIGURE2), request_id=7))
        payload = decode_request(line)
        assert payload["kind"] == "solve"
        assert payload["id"] == 7

    def test_evaluate_request_carries_fields(self):
        payload = evaluate_request(
            parse_program(FIGURE2),
            cost_model="analytic",
            hierarchy={"l1_size": 16384},
            sim_cap=1000,
        )
        decoded = decode_request(encode_response(payload))
        assert decoded["cost_model"] == "analytic"
        assert decoded["hierarchy"] == {"l1_size": 16384}
        assert decoded["sim_cap"] == 1000

    def test_non_json_line_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_request("{oops")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_request("[1, 2]")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request kind"):
            decode_request(json.dumps({"kind": "solv"}))

    def test_solve_without_program_rejected(self):
        with pytest.raises(ProtocolError, match="needs a 'program'"):
            decode_request(json.dumps({"kind": "solve"}))

    def test_error_response_shape(self):
        response = error_response(3, "boom")
        assert response == {"id": 3, "ok": False, "error": "boom"}


class TestClientIdAssignment:
    """request_many pairing rules (ids are the only response key)."""

    class _FakeClient:
        """A DaemonClient with the delivery layer stubbed out."""

        request_many = __import__(
            "repro.service.stream", fromlist=["DaemonClient"]
        ).DaemonClient.request_many

        def __init__(self):
            self._next_id = 0
            self._ring = None
            self._addresses = ["fake"]
            self.sent: list[dict] = []

        def _take_id(self):
            self._next_id += 1
            return self._next_id

        def _target_for(self, payload):
            return self._addresses[0]

        def _deliver(self, address, payloads, failover=True):
            self.sent.extend(payloads)
            return {p["id"]: {**p, "ok": True} for p in payloads}

    def test_duplicate_caller_ids_rejected(self):
        client = self._FakeClient()
        with pytest.raises(ProtocolError, match="duplicate request ids"):
            client.request_many(
                [{"id": 7, "kind": "ping"}, {"id": 7, "kind": "stats"}]
            )
        assert client.sent == []  # nothing went on the wire

    def test_auto_ids_skip_caller_supplied_ones(self):
        """A caller id equal to the next auto id must not collide."""
        client = self._FakeClient()
        responses = client.request_many(
            [{"id": 1, "kind": "ping"}, {"kind": "stats"}]
        )
        assert responses[0]["id"] == 1
        assert responses[1]["id"] != 1
        assert responses[0]["kind"] == "ping"
        assert responses[1]["kind"] == "stats"

"""BatchReport arithmetic: the wall-clock-zero regression suite.

A fully-cached batch can complete inside the timer's resolution;
``throughput`` and the latency percentiles must stay finite, positive
numbers instead of reporting 0 programs/s (or dividing by zero).
"""

import math

import pytest

from repro.ir.parser import parse_program
from repro.service.batch import BatchReport, run_batch
from repro.service.cache import ResultCache
from repro.service.portfolio import PortfolioConfig, PortfolioResult

FIGURE2 = """
array Q1[520][260]
array Q2[520][260]
nest fig2 {
    for i1 = 0 .. 259 {
        for i2 = 0 .. 259 {
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }
    }
}
"""


def _result(name: str = "p", seconds: float = 0.001) -> PortfolioResult:
    return PortfolioResult(
        program=name,
        fingerprint="fp",
        winner="enhanced",
        layouts={},
        exact=True,
        solve_seconds=seconds,
        outcomes=(),
        from_cache=True,
    )


class TestZeroWallClock:
    def test_throughput_is_finite_and_positive_on_zero_wall(self):
        report = BatchReport(
            results=[_result(f"p{i}") for i in range(4)],
            wall_seconds=0.0,
            workers=1,
        )
        assert math.isfinite(report.throughput)
        assert report.throughput > 0.0

    def test_throughput_zero_only_for_empty_batches(self):
        empty = BatchReport(results=[], wall_seconds=0.0, workers=1)
        assert empty.throughput == 0.0

    def test_format_survives_zero_wall_clock(self):
        report = BatchReport(
            results=[_result()], wall_seconds=0.0, workers=1
        )
        text = report.format()
        assert "programs/s" in text
        assert "inf" not in text and "nan" not in text

    def test_negative_solve_seconds_clamped_in_latencies(self):
        """A clock hiccup must not produce negative percentiles."""
        report = BatchReport(
            results=[_result(seconds=-0.5), _result(seconds=0.25)],
            wall_seconds=1.0,
            workers=1,
        )
        assert report.latencies() == [0.0, 0.25]
        assert report.latency_percentile(0.0) == 0.0
        assert report.latency_percentile(1.0) == 0.25

    def test_percentile_fraction_validated(self):
        report = BatchReport(results=[_result()], wall_seconds=1.0, workers=1)
        with pytest.raises(ValueError):
            report.latency_percentile(1.5)

    def test_percentile_of_empty_batch_is_zero(self):
        report = BatchReport(results=[], wall_seconds=1.0, workers=1)
        assert report.latency_percentile(0.5) == 0.0

    def test_percentile_extremes_are_min_and_max(self):
        report = BatchReport(
            results=[
                _result(seconds=s) for s in (0.4, 0.1, 0.3, 0.2)
            ],
            wall_seconds=1.0,
            workers=1,
        )
        assert report.latency_percentile(0.0) == 0.1
        assert report.latency_percentile(1.0) == 0.4

    def test_single_item_batch_answers_that_item_for_every_fraction(self):
        report = BatchReport(
            results=[_result(seconds=0.125)], wall_seconds=1.0, workers=1
        )
        for fraction in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert report.latency_percentile(fraction) == 0.125

    def test_sorted_latencies_cached_and_copy_isolated(self):
        report = BatchReport(
            results=[_result(seconds=s) for s in (0.3, 0.1, 0.2)],
            wall_seconds=1.0,
            workers=1,
        )
        assert report.latency_percentile(0.5) == 0.2
        # Sorting happened once; repeated queries reuse the cache.
        assert report._sorted_latencies() is report._sorted_latencies()
        # Callers mutating the public list can't corrupt later queries.
        report.latencies().clear()
        assert report.latency_percentile(0.5) == 0.2
        # Appending a result invalidates the cached sort.
        report.results.append(_result(seconds=0.05))
        assert report.latency_percentile(0.0) == 0.05

    def test_fully_cached_real_batch_reports_positive_throughput(self):
        """End to end: a warm in-memory batch must never report 0/s."""
        program = parse_program(FIGURE2)
        cache = ResultCache()
        config = PortfolioConfig(schemes=("enhanced",), parallel=False)
        run_batch([program], config=config, cache=cache)
        warm = run_batch([program] * 8, config=config, cache=cache)
        assert warm.cached_fraction == 1.0
        assert math.isfinite(warm.throughput)
        assert warm.throughput > 0.0

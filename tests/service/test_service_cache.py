"""Result-cache semantics: LRU order, stats, persistence."""

import json

import pytest

from repro.service.cache import ResultCache


class TestLookupSemantics:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("fp", "cfg") is None
        cache.put("fp", "cfg", {"answer": 42})
        assert cache.get("fp", "cfg") == {"answer": 42}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_config_token_separates_entries(self):
        """Same fingerprint, different portfolio: distinct entries."""
        cache = ResultCache(capacity=4)
        cache.put("fp", "portfolio[a]", {"winner": "a"})
        cache.put("fp", "portfolio[b]", {"winner": "b"})
        assert cache.get("fp", "portfolio[a]") == {"winner": "a"}
        assert cache.get("fp", "portfolio[b]") == {"winner": "b"}
        assert len(cache) == 2

    def test_overwrite_refreshes_value(self):
        cache = ResultCache(capacity=4)
        cache.put("fp", "cfg", {"v": 1})
        cache.put("fp", "cfg", {"v": 2})
        assert cache.get("fp", "cfg") == {"v": 2}
        assert len(cache) == 1

    def test_contains_does_not_disturb_stats(self):
        cache = ResultCache(capacity=4)
        cache.put("fp", "cfg", {})
        assert cache.contains("fp", "cfg")
        assert not cache.contains("fp", "other")
        assert cache.stats.lookups == 0


class TestLruEviction:
    def test_capacity_is_enforced_lru_first(self):
        cache = ResultCache(capacity=2)
        cache.put("a", "c", {"v": "a"})
        cache.put("b", "c", {"v": "b"})
        assert cache.get("a", "c") is not None  # refresh a: b is now LRU
        cache.put("d", "c", {"v": "d"})
        assert cache.get("b", "c") is None
        assert cache.get("a", "c") is not None
        assert cache.get("d", "c") is not None
        assert cache.stats.evictions == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(capacity=8, path=path)
        cache.put("fp1", "cfg", {"layouts": {"A": [[1, 0]]}})
        cache.put("fp2", "cfg", {"layouts": {}})
        cache.save()

        reloaded = ResultCache(capacity=8, path=path)
        assert len(reloaded) == 2
        assert reloaded.get("fp1", "cfg") == {"layouts": {"A": [[1, 0]]}}
        assert reloaded.stats.hits == 1

    def test_corrupt_file_starts_cold(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json", encoding="utf-8")
        cache = ResultCache(path=str(path))
        assert len(cache) == 0

    def test_version_mismatch_starts_cold(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps({"version": 999, "entries": [["k", {}]]}),
            encoding="utf-8",
        )
        assert len(ResultCache(path=str(path))) == 0

    def test_load_respects_capacity(self, tmp_path):
        path = str(tmp_path / "cache.json")
        big = ResultCache(capacity=16, path=path)
        for index in range(10):
            big.put(f"fp{index}", "cfg", {"v": index})
        big.save()

        small = ResultCache(capacity=3, path=path)
        assert len(small) == 3
        # The most recently used tail survives.
        assert small.get("fp9", "cfg") == {"v": 9}
        assert small.get("fp0", "cfg") is None

    def test_pathless_save_is_a_noop(self):
        ResultCache().save()

    def test_clear_drops_entries(self, tmp_path):
        cache = ResultCache(capacity=4, path=str(tmp_path / "c.json"))
        cache.put("fp", "cfg", {})
        cache.clear()
        assert len(cache) == 0
        cache.save()
        assert len(ResultCache(path=str(tmp_path / "c.json"))) == 0

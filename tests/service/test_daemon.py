"""Resident daemon: streaming protocol, warm cache, backpressure."""

import asyncio
import json
import os
import threading
import time

import pytest

from repro.ir.parser import parse_program
from repro.service.batch import run_batch
from repro.service.cache import ShardedResultCache
from repro.service.daemon import DaemonConfig, SolverDaemon
from repro.service.evaluate import EvaluationRequest, run_evaluation_batch
from repro.service.portfolio import PortfolioConfig, PortfolioResult
from repro.service.stream import DaemonClient, evaluate_request, solve_request

#: Small, quick-to-solve programs (distinct fingerprints).
_TEMPLATE = """
array Q1[{rows}][260]
array Q2[{rows}][260]
nest fig2 {{
    for i1 = 0 .. 259 {{
        for i2 = 0 .. 259 {{
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }}
    }}
}}
"""


def _program(rows: int, name: str = "program"):
    return parse_program(_TEMPLATE.format(rows=rows), name=name)


def _fast_config() -> PortfolioConfig:
    """Sequential single scheme: deterministic and spawn-free."""
    return PortfolioConfig(schemes=("enhanced",), parallel=False)


class _DaemonHarness:
    """A daemon served from a background thread on a tmp unix socket."""

    def __init__(self, tmp_path, daemon_config=None, cache=None):
        self.daemon = SolverDaemon(
            config=_fast_config(),
            daemon_config=(
                daemon_config
                if daemon_config is not None
                else DaemonConfig(workers=1, shards=2, max_inflight=8)
            ),
            cache=cache,
        )
        self.socket_path = str(tmp_path / "daemon.sock")
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.serve_unix(self.socket_path)),
            daemon=True,
        )
        self.thread.start()
        deadline = time.monotonic() + 30.0
        while not os.path.exists(self.socket_path):
            if time.monotonic() > deadline:  # pragma: no cover
                raise TimeoutError("daemon socket never appeared")
            time.sleep(0.02)

    def client(self) -> DaemonClient:
        return DaemonClient(self.socket_path, timeout=120.0)

    def stop(self) -> None:
        if self.thread.is_alive():
            try:
                with self.client() as client:
                    client.shutdown()
            except OSError:  # pragma: no cover - already gone
                pass
        self.thread.join(timeout=15)
        assert not self.thread.is_alive()


@pytest.fixture
def harness(tmp_path):
    harness = _DaemonHarness(tmp_path)
    try:
        yield harness
    finally:
        harness.stop()


class TestProtocol:
    def test_ping_reports_configuration(self, harness):
        with harness.client() as client:
            hello = client.ping()
        assert hello["ok"]
        assert hello["result"]["schemes"] == ["enhanced"]
        assert hello["result"]["shards"] == 2

    def test_malformed_line_gets_error_response_and_serving_continues(
        self, harness
    ):
        with harness.client() as client:
            sock, reader = client._connection(client.addresses[0])
            sock.sendall(b"{not json}\n")
            response = client._read_response(reader)
            assert response["ok"] is False
            assert "JSON" in response["error"]
            # The connection is still serviceable afterwards.
            assert client.ping()["ok"]

    def test_unknown_kind_echoes_request_id(self, harness):
        with harness.client() as client:
            sock, reader = client._connection(client.addresses[0])
            sock.sendall(
                json.dumps({"id": 41, "kind": "solv"}).encode() + b"\n"
            )
            response = client._read_response(reader)
        assert response == {
            "id": 41,
            "ok": False,
            "error": response["error"],
        }
        assert "unknown request kind" in response["error"]

    def test_invalid_evaluate_fields_are_protocol_errors(self, harness):
        program = _program(520)
        with harness.client() as client:
            bad_model = client.request(
                evaluate_request(program, cost_model="weighted", sim_cap=10)
            )
            bad_hierarchy = client.request(
                {
                    "kind": "evaluate",
                    "program": solve_request(program)["program"],
                    "hierarchy": {"warp_drive": 9},
                }
            )
        assert bad_model["ok"] is False
        assert bad_hierarchy["ok"] is False
        assert "warp_drive" in bad_hierarchy["error"]


class TestServing:
    def test_second_pass_of_mixed_batch_is_cache_served(self, harness):
        """The CI smoke invariant: 10 mixed requests, streamed twice,
        second pass >= 50% served from the daemon's cache."""
        programs = [_program(520 + 2 * index) for index in range(5)]
        requests = [solve_request(program) for program in programs] + [
            evaluate_request(program, cost_model="analytic")
            for program in programs
        ]
        with harness.client() as client:
            first = client.request_many(requests)
            second = client.request_many(requests)
        assert all(response["ok"] for response in first)
        assert all(response["ok"] for response in second)
        assert sum(response["from_cache"] for response in first) == 0
        cached = sum(response["from_cache"] for response in second)
        assert cached >= len(requests) / 2
        # Solve payloads are byte-identical across passes.
        for before, after in zip(first[:5], second[:5]):
            assert json.dumps(before["result"], sort_keys=True) == json.dumps(
                after["result"], sort_keys=True
            )

    def test_renamed_twin_is_served_from_cache_under_its_own_name(self, harness):
        with harness.client() as client:
            original = client.solve(_program(520, name="original"))
            twin = client.solve(_program(520, name="twin"))
        assert not original["from_cache"]
        assert twin["from_cache"]
        assert twin["result"]["program"] == "twin"

    def test_concurrent_identical_misses_are_deduplicated(self, harness):
        program = _program(600)
        with harness.client() as client:
            responses = client.request_many(
                [solve_request(program) for _ in range(4)]
            )
            stats = client.stats()
        assert all(response["ok"] for response in responses)
        payloads = {
            json.dumps(response["result"], sort_keys=True)
            for response in responses
        }
        assert len(payloads) == 1
        assert stats["counters"]["deduplicated"] >= 1
        # Only the dedup owner stores: twins must not inflate the
        # store counter (4 identical requests -> exactly 1 store).
        assert stats["cache"]["stores"] == 1

    def test_stats_snapshot_shape(self, harness):
        with harness.client() as client:
            client.solve(_program(520))
            stats = client.stats()
        assert stats["counters"]["solve"] == 1
        assert stats["cache"]["entries"] == 1
        assert len(stats["cache"]["shards"]) == 2
        assert stats["uptime_seconds"] > 0


class TestShutdownSemantics:
    def test_shutdown_unblocks_an_idle_reader(self):
        """A stdio-style daemon whose client keeps the stream open (no
        EOF, no further lines) must still exit on a shutdown request."""
        daemon = SolverDaemon(
            config=_fast_config(),
            daemon_config=DaemonConfig(workers=1, shards=1),
        )
        written: list[bytes] = []

        async def scenario():
            queue: asyncio.Queue = asyncio.Queue()  # never EOFs

            async def write_line(data: bytes) -> None:
                written.append(data)

            server = asyncio.create_task(
                daemon._serve_stream(queue.get, write_line)
            )
            await queue.put(
                json.dumps({"id": 1, "kind": "shutdown"}).encode() + b"\n"
            )
            await asyncio.wait_for(server, timeout=10.0)

        try:
            asyncio.run(scenario())
        finally:
            daemon.close()
        responses = [json.loads(line) for line in written]
        assert responses[0]["kind"] == "shutdown"
        assert responses[0]["ok"]

    def test_invalid_ttl_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="ttl_seconds"):
            DaemonConfig(ttl_seconds=0.0)
        with pytest.raises(ValueError, match="cache_capacity"):
            DaemonConfig(cache_capacity=0)


class TestBackpressure:
    def test_max_inflight_one_still_serves_a_pipelined_batch(self, tmp_path):
        harness = _DaemonHarness(
            tmp_path,
            daemon_config=DaemonConfig(workers=1, shards=2, max_inflight=1),
        )
        try:
            programs = [_program(520 + 2 * index) for index in range(6)]
            with harness.client() as client:
                responses = client.solve_many(programs)
            assert all(response["ok"] for response in responses)
            assert [r["result"]["program"] for r in responses] == [
                p.name for p in programs
            ]
        finally:
            harness.stop()


class TestThinClient:
    def test_run_batch_through_daemon_matches_local_results(
        self, harness, tmp_path
    ):
        programs = [_program(520 + 2 * index) for index in range(3)]
        local = run_batch(programs, config=_fast_config())
        with harness.client() as client:
            remote = run_batch(programs, client=client)
        assert remote.total == local.total
        for mine, theirs in zip(local.results, remote.results):
            assert mine.layouts == theirs.layouts
            assert mine.winner == theirs.winner
            assert mine.exact and theirs.exact
        # Second thin-client pass is served from the daemon's cache.
        with harness.client() as client:
            warm = run_batch(programs, client=client)
        assert warm.cached_fraction == 1.0

    def test_run_evaluation_batch_through_daemon(self, harness):
        programs = [_program(520), _program(524)]
        requests = [
            EvaluationRequest(program=program, cost_model="analytic")
            for program in programs
        ]
        local = run_evaluation_batch(requests, config=_fast_config())
        with harness.client() as client:
            remote = run_evaluation_batch(requests, client=client)
        assert [result.value for result in remote] == [
            result.value for result in local
        ]
        assert all(result.exact for result in remote)

    def test_daemon_error_raises_runtime_error(self, harness):
        class _BrokenClient:
            def solve_many(self, programs):
                return [{"ok": False, "error": "boom"} for _ in programs]

        with pytest.raises(RuntimeError, match="boom"):
            run_batch([_program(520)], client=_BrokenClient())


class TestPersistence:
    def test_daemon_restart_serves_from_persisted_shards(self, tmp_path):
        directory = str(tmp_path / "cache.d")
        program = _program(520)

        first = _DaemonHarness(
            tmp_path, cache=ShardedResultCache(shards=2, directory=directory)
        )
        try:
            with first.client() as client:
                cold = client.solve(program)
            assert not cold["from_cache"]
        finally:
            first.stop()

        second = _DaemonHarness(
            tmp_path, cache=ShardedResultCache(shards=2, directory=directory)
        )
        try:
            with second.client() as client:
                warm = client.solve(program)
            assert warm["from_cache"]
            assert json.dumps(warm["result"], sort_keys=True) == json.dumps(
                cold["result"], sort_keys=True
            )
        finally:
            second.stop()

    def test_handle_request_directly(self):
        """The core dispatcher is usable without any transport."""
        daemon = SolverDaemon(
            config=_fast_config(),
            daemon_config=DaemonConfig(workers=1, shards=1),
        )
        try:
            response = asyncio.run(
                daemon.handle_request(solve_request(_program(520), request_id=9))
            )
        finally:
            daemon.close()
        assert response["ok"]
        assert response["id"] == 9
        result = PortfolioResult.from_dict(response["result"])
        assert result.exact

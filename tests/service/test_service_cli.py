"""End-to-end tests of ``python -m repro.service`` and the batch API."""

import os
import subprocess
import sys

import pytest

from repro import __version__
from repro.bench import build_benchmark, random_suite
from repro.service.batch import run_batch
from repro.service.cache import ResultCache
from repro.service.portfolio import PortfolioConfig


def _run_cli(*args: str) -> str:
    env = dict(os.environ)
    result = subprocess.run(
        [sys.executable, "-m", "repro.service", *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestCli:
    def test_version_flag(self):
        output = _run_cli("--version")
        assert output.strip() == f"repro {__version__}"

    def test_single_program_prints_throughput_report(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        output = _run_cli(
            "--programs", "MxM",
            "--portfolio", "enhanced,cbj",
            "--workers", "2",
            "--cache", cache,
        )
        assert "Throughput report" in output
        assert "winner=" in output
        assert "programs: 1" in output
        assert "served 0/1 from cache" in output

    def test_second_run_is_served_from_cache(self, tmp_path):
        cache = str(tmp_path / "cache.json")
        args = (
            "--programs", "MxM",
            "--portfolio", "enhanced,cbj,weighted",
            "--workers", "2",
            "--cache", cache,
        )
        _run_cli(*args)
        output = _run_cli(*args)
        assert "served 1/1 from cache (100.0%)" in output

    def test_random_programs_and_verbose_table(self, tmp_path):
        output = _run_cli(
            "--programs", "none",
            "--random", "2",
            "--sequential",
            "--no-cache",
            "--verbose",
            "--cache", str(tmp_path / "unused.json"),
        )
        assert "Rand-0-001" in output
        assert "won" in output

    def test_unknown_benchmark_is_a_clean_error(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.service", "--programs", "Nope"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode != 0
        assert "unknown benchmark" in result.stderr

    def test_unknown_scheme_is_a_clean_error(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.service", "--portfolio", "quantum"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode != 0
        assert "unknown portfolio schemes" in result.stderr


class TestBatchApi:
    def test_batch_shares_one_cache(self):
        """Duplicate programs in one batch race once; a repeat batch is
        served entirely from cache."""
        programs = [build_benchmark("MxM"), build_benchmark("MxM")]
        cache = ResultCache()
        config = PortfolioConfig(schemes=("enhanced",), parallel=False)
        first = run_batch(programs, config, cache=cache, workers=1)
        assert first.total == 2
        assert first.cache_hits == 1  # in-batch duplicate
        second = run_batch(programs, config, cache=cache, workers=1)
        assert second.cached_fraction == 1.0
        assert "100.0%" in second.format()

    def test_worker_pool_path(self):
        """workers > 1 exercises the process pool and result pickling."""
        programs = list(random_suite(3, seed=11))
        config = PortfolioConfig(schemes=("enhanced", "cbj"), parallel=False)
        report = run_batch(programs, config, workers=2)
        assert report.total == 3
        assert all(result.exact for result in report.results)
        assert report.throughput > 0
        assert set(report.scheme_wins()) <= {"enhanced", "cbj"}

    def test_order_is_preserved(self):
        programs = list(random_suite(4, seed=5))
        config = PortfolioConfig(schemes=("enhanced",), parallel=False)
        report = run_batch(programs, config, workers=1)
        assert [r.program for r in report.results] == [
            p.name for p in programs
        ]

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            run_batch([], workers=0)


class TestObservabilityFlags:
    def test_log_level_defaults_from_environment(self, monkeypatch):
        from repro.service.cli import build_parser

        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        args = build_parser().parse_args(["--programs", "MxM"])
        assert args.log_level == "debug"
        monkeypatch.delenv("REPRO_LOG_LEVEL")
        args = build_parser().parse_args(["--programs", "MxM"])
        assert args.log_level == "info"

    def test_flag_overrides_environment(self, monkeypatch):
        from repro.service.cli import build_parser

        monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
        args = build_parser().parse_args(
            ["--programs", "MxM", "--log-level", "warning", "--log-json"]
        )
        assert args.log_level == "warning"
        assert args.log_json is True

    def test_trace_log_requires_serve(self):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.service",
                "--programs", "MxM", "--trace-log", "/tmp/nope.jsonl",
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode != 0
        assert "--trace-log requires --serve" in result.stderr

    def test_json_logging_emits_parseable_lines(self, tmp_path):
        """--serve with --log-json writes one JSON object per log line."""
        import json as json_module

        script = (
            "import sys, logging\n"
            "from repro.service.cli import build_parser, _configure_logging\n"
            "args = build_parser().parse_args(['--log-json', '--log-level', 'debug'])\n"
            "_configure_logging(args)\n"
            "logging.getLogger('repro.test').info('hello %s', 'world')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=600,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert result.returncode == 0, result.stderr
        lines = [l for l in result.stderr.splitlines() if l.strip()]
        assert lines, "expected at least one log line"
        record = json_module.loads(lines[-1])
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.test"
        assert record["message"] == "hello world"

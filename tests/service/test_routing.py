"""Consistent-hash routing: determinism, rebalance bound, addresses."""

import asyncio
import os
import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.routing import (
    HashRing,
    connect_address,
    format_address,
    parse_address,
    reclaim_stale_socket,
)

_MEMBERS = [f"/tmp/cluster/member-{i}.sock" for i in range(5)]


def _keys(count: int) -> list[str]:
    """Deterministic fingerprint-shaped keys."""
    import hashlib

    return [
        hashlib.sha256(f"key-{i}".encode()).hexdigest()[:32]
        for i in range(count)
    ]


class TestHashRing:
    def test_owner_is_a_member(self):
        ring = HashRing(_MEMBERS)
        for key in _keys(50):
            assert ring.owner(key) in ring.members

    @given(
        members=st.lists(
            st.text(
                alphabet="abcdefgh0123456789", min_size=1, max_size=12
            ),
            min_size=1,
            max_size=6,
            unique=True,
        ),
        key=st.text(min_size=1, max_size=40),
    )
    @settings(max_examples=200, deadline=None)
    def test_order_independence(self, members, key):
        """Every permutation of the member list routes identically."""
        forward = HashRing(members)
        backward = HashRing(list(reversed(members)))
        assert forward.owner(key) == backward.owner(key)
        assert forward.preference(key) == backward.preference(key)

    def test_preference_starts_with_owner_and_is_distinct(self):
        ring = HashRing(_MEMBERS)
        for key in _keys(20):
            preferred = ring.preference(key, 3)
            assert preferred[0] == ring.owner(key)
            assert len(preferred) == len(set(preferred)) == 3

    def test_preference_caps_at_member_count(self):
        ring = HashRing(_MEMBERS[:2])
        assert len(ring.preference("abc", 10)) == 2

    def test_rebalance_bound_on_member_add(self):
        """Adding one member moves at most ~2/N of the keys (the
        consistent-hashing contract; a modulo scheme moves ~all)."""
        keys = _keys(2000)
        ring = HashRing(_MEMBERS)
        grown = ring.with_member("/tmp/cluster/member-new.sock")
        moved = sum(
            1 for key in keys if ring.owner(key) != grown.owner(key)
        )
        bound = 2.0 / len(grown.members)
        assert moved / len(keys) <= bound

    def test_rebalance_bound_on_member_remove(self):
        keys = _keys(2000)
        ring = HashRing(_MEMBERS)
        shrunk = ring.without_member(_MEMBERS[2])
        moved = sum(
            1 for key in keys if ring.owner(key) != shrunk.owner(key)
        )
        # Only keys the removed member owned may move.
        owned = sum(1 for key in keys if ring.owner(key) == _MEMBERS[2])
        assert moved == owned
        assert moved / len(keys) <= 2.0 / len(ring.members)

    def test_removed_members_keys_move_to_survivors(self):
        ring = HashRing(_MEMBERS)
        shrunk = ring.without_member(_MEMBERS[0])
        for key in _keys(100):
            assert shrunk.owner(key) != _MEMBERS[0]

    def test_duplicates_collapse(self):
        assert HashRing(["a", "a", "b"]).members == ("a", "b")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one member"):
            HashRing([])
        with pytest.raises(ValueError, match="non-empty"):
            HashRing([""])

    def test_contains_and_len(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring
        assert "c" not in ring

    def test_spread_is_roughly_even(self):
        """128 virtual nodes keep per-member load near 1/N."""
        keys = _keys(5000)
        ring = HashRing(_MEMBERS)
        counts = {member: 0 for member in ring.members}
        for key in keys:
            counts[ring.owner(key)] += 1
        expected = len(keys) / len(ring.members)
        for member, count in counts.items():
            assert 0.4 * expected <= count <= 1.8 * expected, counts


class TestAddresses:
    def test_unix_paths(self):
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("relative.sock") == ("unix", "relative.sock")

    def test_tcp(self):
        assert parse_address("localhost:9001") == ("tcp", "localhost", 9001)
        assert parse_address("10.0.0.2:80") == ("tcp", "10.0.0.2", 80)

    def test_path_with_colon_is_unix(self):
        # A separator anywhere wins: sockets may live in odd dirs.
        assert parse_address("/tmp/odd:name/x.sock")[0] == "unix"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_address("")
        with pytest.raises(ValueError, match="not an integer"):
            parse_address("host:port")
        with pytest.raises(ValueError, match="out of range"):
            parse_address("host:70000")

    def test_format_round_trip(self):
        for address in ("/tmp/a.sock", "localhost:9001"):
            assert format_address(parse_address(address)) == address


class TestStaleSocketReclaim:
    def test_missing_path_is_fine(self, tmp_path):
        reclaim_stale_socket(str(tmp_path / "never-existed.sock"))

    def test_stale_socket_is_unlinked(self, tmp_path):
        """A socket file whose daemon died (no listener) is removed."""
        path = str(tmp_path / "stale.sock")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(path)
        sock.close()  # bound but never listening -> connect refused
        assert os.path.exists(path)
        reclaim_stale_socket(path)
        assert not os.path.exists(path)

    def test_live_socket_is_protected(self, tmp_path):
        """A path a live daemon accepts on must not be unlinked."""
        path = str(tmp_path / "live.sock")
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(path)
        server.listen(1)
        try:
            with pytest.raises(OSError, match="live daemon"):
                reclaim_stale_socket(path)
            assert os.path.exists(path)
        finally:
            server.close()

    def test_non_socket_file_is_protected(self, tmp_path):
        path = tmp_path / "not-a-socket"
        path.write_text("precious data")
        with pytest.raises(OSError, match="not a socket"):
            reclaim_stale_socket(str(path))
        assert path.read_text() == "precious data"

    def test_daemon_reclaims_after_hard_kill(self, tmp_path):
        """End to end: a stale file does not block the next daemon."""
        from repro.service.daemon import DaemonConfig, SolverDaemon
        from repro.service.portfolio import PortfolioConfig

        path = str(tmp_path / "daemon.sock")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(path)
        sock.close()  # simulate SIGKILL leftovers
        daemon = SolverDaemon(
            config=PortfolioConfig(schemes=("enhanced",), parallel=False),
            daemon_config=DaemonConfig(workers=1, shards=1),
        )

        async def bind_then_shutdown():
            serve = asyncio.ensure_future(daemon.serve_unix(path))
            await asyncio.sleep(0)
            while not daemon._shutdown.is_set():
                if os.path.exists(path):
                    daemon._shutdown.set()
                await asyncio.sleep(0.02)
            await serve

        thread = threading.Thread(
            target=lambda: asyncio.run(bind_then_shutdown()), daemon=True
        )
        thread.start()
        thread.join(timeout=60)
        assert not thread.is_alive()


def test_connect_address_round_trip(tmp_path):
    """connect_address speaks to a listening unix socket."""
    path = str(tmp_path / "echo.sock")
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    server.bind(path)
    server.listen(1)
    try:
        client = connect_address(path, timeout=5.0)
        client.close()
    finally:
        server.close()

"""Portfolio racing: correctness vs single schemes, deadlines, caching."""

import time

import pytest

from repro.bench import benchmark_build_options, build_benchmark
from repro.csp.stats import SolverResult, SolverStats
from repro.ir.parser import parse_program
from repro.opt.network_builder import BuildOptions, build_layout_network
from repro.opt.optimizer import LayoutOptimizer
from repro.service.cache import ResultCache
from repro.service.portfolio import (
    EXTRA_SCHEMES,
    PortfolioConfig,
    PortfolioResult,
    PortfolioSolver,
    SchemeOutcome,
)

FIGURE2 = """
array Q1[520][260]
array Q2[520][260]
nest fig2 {
    for i1 = 0 .. 259 {
        for i2 = 0 .. 259 {
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }
    }
}
"""

#: How long the deliberately slow scheme sleeps; the racing tests
#: assert completion in a fraction of this.
SLEEP_SECONDS = 20.0


class _SleepySolver:
    """Burns wall-clock time, then gives up (never wins a race)."""

    name = "sleepy"

    def solve(self, network) -> SolverResult:
        time.sleep(SLEEP_SECONDS)
        return SolverResult(None, SolverStats(), complete=False)


@pytest.fixture
def sleepy_schemes():
    """Two slow schemes registered for the duration of one test."""
    EXTRA_SCHEMES["sleepy-a"] = lambda seed: _SleepySolver()
    EXTRA_SCHEMES["sleepy-b"] = lambda seed: _SleepySolver()
    try:
        yield ("sleepy-a", "sleepy-b")
    finally:
        EXTRA_SCHEMES.pop("sleepy-a", None)
        EXTRA_SCHEMES.pop("sleepy-b", None)


class TestConfig:
    def test_parse(self):
        config = PortfolioConfig.parse("enhanced, cbj ,weighted", seed=3)
        assert config.schemes == ("enhanced", "cbj", "weighted")
        assert config.seed == 3

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown portfolio schemes"):
            PortfolioConfig(schemes=("enhanced", "quantum"))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PortfolioConfig(schemes=("enhanced", "enhanced"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PortfolioConfig(schemes=())

    def test_parse_rejects_duplicate_tokens(self):
        """Racing two copies of one scheme burns a process on an
        identical search; the CLI syntax rejects it with the tokens."""
        with pytest.raises(ValueError, match="duplicate scheme tokens"):
            PortfolioConfig.parse("min-conflicts, min-conflicts ,enhanced")
        with pytest.raises(ValueError, match="min-conflicts"):
            PortfolioConfig.parse("min-conflicts,min-conflicts")

    def test_scheme_seeds_are_distinct_per_position(self):
        config = PortfolioConfig(
            schemes=("enhanced", "cbj", "min-conflicts"), seed=7
        )
        seeds = [config.scheme_seed(i) for i in range(len(config.schemes))]
        assert len(set(seeds)) == len(seeds)
        # Index 0 keeps the base seed: a single-scheme portfolio stays
        # bit-compatible with running that scheme directly.
        assert seeds[0] == config.seed

    def test_race_hands_each_scheme_its_own_seed(self):
        """Two randomized schemes must not take identical walks: the
        race derives one distinct RNG seed per position."""
        recorded: dict[str, int] = {}

        class _Recorder:
            def __init__(self, name):
                self.name = name

            def solve(self, network):
                return SolverResult(None, SolverStats(), complete=False)

        def factory(name):
            def make(seed):
                recorded[name] = seed
                return _Recorder(name)

            return make

        EXTRA_SCHEMES["rec-a"] = factory("rec-a")
        EXTRA_SCHEMES["rec-b"] = factory("rec-b")
        try:
            config = PortfolioConfig(
                schemes=("rec-a", "rec-b"), seed=11, parallel=False
            )
            PortfolioSolver(config).optimize(parse_program(FIGURE2))
        finally:
            EXTRA_SCHEMES.pop("rec-a", None)
            EXTRA_SCHEMES.pop("rec-b", None)
        assert recorded["rec-a"] == 11
        assert recorded["rec-b"] != recorded["rec-a"]

    def test_token_ignores_latency_knobs(self):
        """Deadline/parallelism change speed, not answers: same key."""
        fast = PortfolioConfig(deadline_seconds=1.0, parallel=False)
        slow = PortfolioConfig(deadline_seconds=900.0, parallel=True)
        assert fast.token() == slow.token()
        other = PortfolioConfig(schemes=("enhanced",))
        assert fast.token() != other.token()


class TestRacingCorrectness:
    @pytest.mark.parametrize("name", ["MxM", "Med-Im04"])
    def test_portfolio_equals_best_single_scheme(self, name):
        """Sequential portfolio = first scheme that solves exactly, so
        its layouts equal that single scheme's layouts exactly."""
        program = build_benchmark(name)
        options = benchmark_build_options()
        config = PortfolioConfig(
            schemes=("enhanced", "cbj", "weighted"), parallel=False
        )
        portfolio = PortfolioSolver(config, options=options).optimize(program)
        single = LayoutOptimizer(scheme="enhanced", options=options).optimize(
            program
        )
        assert portfolio.exact and single.exact
        assert portfolio.winner == "enhanced"
        assert portfolio.layouts == single.layouts

    def test_parallel_race_finds_exact_solution(self):
        program = build_benchmark("MxM")
        options = benchmark_build_options()
        config = PortfolioConfig(
            schemes=("enhanced", "cbj", "weighted"), deadline_seconds=120.0
        )
        result = PortfolioSolver(config, options=options).optimize(program)
        assert result.exact
        assert result.winner in config.schemes
        network = build_layout_network(program, options).network
        assignment = {
            variable: result.layouts[variable] for variable in network.variables
        }
        assert network.is_solution(assignment)
        assert {o.scheme for o in result.outcomes} <= set(config.schemes)

    def test_winner_row_is_marked_won(self):
        program = parse_program(FIGURE2)
        config = PortfolioConfig(schemes=("enhanced", "cbj"), parallel=False)
        result = PortfolioSolver(config).optimize(program)
        rows = {o.scheme: o.status for o in result.outcomes}
        assert rows[result.winner] == "won"


class TestDeadlines:
    def test_race_cancels_stragglers(self, sleepy_schemes):
        """A fast scheme wins and the sleepers are terminated, so the
        race takes a fraction of their sleep time."""
        program = parse_program(FIGURE2)
        config = PortfolioConfig(
            schemes=sleepy_schemes + ("enhanced",),
            deadline_seconds=SLEEP_SECONDS * 4,
        )
        start = time.perf_counter()
        result = PortfolioSolver(config).optimize(program)
        elapsed = time.perf_counter() - start
        assert elapsed < SLEEP_SECONDS / 2
        assert result.winner == "enhanced"
        assert result.exact
        statuses = {o.scheme: o.status for o in result.outcomes}
        assert statuses["enhanced"] == "won"
        assert statuses[sleepy_schemes[0]] == "cancelled"
        assert statuses[sleepy_schemes[1]] == "cancelled"

    def test_deadline_terminates_the_race(self, sleepy_schemes):
        """All schemes stuck: the deadline fires, stragglers report
        'timeout', and the weighted fallback still produces layouts."""
        program = parse_program(FIGURE2)
        config = PortfolioConfig(
            schemes=sleepy_schemes, deadline_seconds=1.0
        )
        start = time.perf_counter()
        result = PortfolioSolver(config).optimize(program)
        elapsed = time.perf_counter() - start
        assert elapsed < SLEEP_SECONDS / 2
        statuses = {o.scheme: o.status for o in result.outcomes}
        assert statuses[sleepy_schemes[0]] == "timeout"
        assert statuses[sleepy_schemes[1]] == "timeout"
        assert result.winner == "weighted-fallback"
        assert result.exact  # figure 2's network is satisfiable
        assert set(result.layouts) == {"Q1", "Q2"}


class TestCachingIntegration:
    def test_second_request_is_served_from_cache(self):
        program = parse_program(FIGURE2)
        cache = ResultCache()
        solver = PortfolioSolver(
            PortfolioConfig(schemes=("enhanced",), parallel=False), cache=cache
        )
        first = solver.optimize(program)
        second = solver.optimize(program)
        assert not first.from_cache
        assert second.from_cache
        assert second.layouts == first.layouts
        assert second.winner == first.winner
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_non_exact_results_are_not_cached(self, monkeypatch):
        """Best-effort answers are deadline-shaped; caching one would
        freeze it even for retries with a bigger budget."""
        from repro.layout.layout import row_major

        program = parse_program(FIGURE2)
        cache = ResultCache()
        solver = PortfolioSolver(
            PortfolioConfig(schemes=("enhanced",), parallel=False), cache=cache
        )
        monkeypatch.setattr(
            solver,
            "_race",
            lambda network, weights: (
                "enhanced",
                False,
                {"Q1": row_major(2), "Q2": row_major(2)},
                (),
            ),
        )
        result = solver.optimize(program)
        assert not result.exact
        assert len(cache) == 0

    def test_cache_hit_reports_the_requesters_program_name(self):
        """Fingerprints ignore names: a renamed twin is served from
        cache but reported under its own name."""
        cache = ResultCache()
        solver = PortfolioSolver(
            PortfolioConfig(schemes=("enhanced",), parallel=False), cache=cache
        )
        solver.optimize(parse_program(FIGURE2, name="original"))
        twin = solver.optimize(parse_program(FIGURE2, name="renamed-twin"))
        assert twin.from_cache
        assert twin.program == "renamed-twin"

    def test_result_roundtrips_through_serialization(self):
        program = parse_program(FIGURE2)
        solver = PortfolioSolver(
            PortfolioConfig(schemes=("enhanced", "weighted"), parallel=False)
        )
        result = solver.optimize(program)
        clone = PortfolioResult.from_dict(result.to_dict(), from_cache=True)
        assert clone.layouts == result.layouts
        assert clone.winner == result.winner
        assert clone.exact == result.exact
        assert [o.scheme for o in clone.outcomes] == [
            o.scheme for o in result.outcomes
        ]
        assert clone.winner_stats().nodes == result.winner_stats().nodes


class TestOptimizerIntegration:
    def test_portfolio_scheme_string(self):
        program = parse_program(FIGURE2)
        outcome = LayoutOptimizer(scheme="portfolio:enhanced,cbj").optimize(
            program
        )
        assert outcome.scheme.startswith("portfolio:")
        assert outcome.exact

    def test_portfolio_config_instance(self):
        program = parse_program(FIGURE2)
        config = PortfolioConfig(schemes=("enhanced",), parallel=False)
        outcome = LayoutOptimizer(scheme=config).optimize(program)
        assert outcome.scheme == "portfolio:enhanced"
        assert outcome.exact


class _CooperativeSleeper:
    """Sleeps forever *unless* a deadline was propagated to it.

    The observable for deadline propagation: before the portfolio
    forwarded its remaining budget into each scheme, this solver slept
    the full SLEEP_SECONDS and had to be terminated ("timeout"); with
    propagation it stops itself and reports "gave-up".
    """

    name = "cooperative"

    def __init__(self):
        self.deadline_seconds = None

    def set_deadline(self, seconds: float) -> None:
        self.deadline_seconds = seconds

    def solve(self, network) -> SolverResult:
        if self.deadline_seconds is None:
            time.sleep(SLEEP_SECONDS)
            return SolverResult(None, SolverStats(), complete=False)
        # Honor the budget with slack to spare: stop at 20% of it.
        deadline_at = time.monotonic() + self.deadline_seconds * 0.2
        while time.monotonic() < deadline_at:
            time.sleep(0.01)
        return SolverResult(None, SolverStats(), complete=False)


@pytest.fixture
def cooperative_scheme():
    EXTRA_SCHEMES["cooperative"] = lambda seed: _CooperativeSleeper()
    try:
        yield "cooperative"
    finally:
        EXTRA_SCHEMES.pop("cooperative", None)


@pytest.fixture
def cooperative_pair():
    EXTRA_SCHEMES["cooperative-a"] = lambda seed: _CooperativeSleeper()
    EXTRA_SCHEMES["cooperative-b"] = lambda seed: _CooperativeSleeper()
    try:
        yield ("cooperative-a", "cooperative-b")
    finally:
        EXTRA_SCHEMES.pop("cooperative-a", None)
        EXTRA_SCHEMES.pop("cooperative-b", None)


class TestDeadlinePropagation:
    def test_sequential_scheme_stops_itself(self, cooperative_scheme):
        """Sequential mode forwards the remaining budget into the
        scheme, which stops mid-search -- previously the deadline was
        only checked *between* schemes and a slow scheme burned its
        full solve."""
        program = parse_program(FIGURE2)
        config = PortfolioConfig(
            schemes=(cooperative_scheme, "enhanced"),
            deadline_seconds=2.0,
            parallel=False,
        )
        start = time.perf_counter()
        result = PortfolioSolver(config).optimize(program)
        elapsed = time.perf_counter() - start
        assert elapsed < SLEEP_SECONDS / 2
        statuses = {o.scheme: o.status for o in result.outcomes}
        assert statuses[cooperative_scheme] == "gave-up"
        # The fast scheme still ran inside the same race budget.
        assert result.winner == "enhanced"

    def test_parallel_racer_receives_the_deadline(self, cooperative_pair):
        """Racing children get the absolute deadline across the fork:
        the cooperative schemes report their own give-up instead of
        being terminated."""
        program = parse_program(FIGURE2)
        config = PortfolioConfig(
            schemes=cooperative_pair,
            deadline_seconds=5.0,
            parallel=True,
        )
        start = time.perf_counter()
        result = PortfolioSolver(config).optimize(program)
        elapsed = time.perf_counter() - start
        assert elapsed < SLEEP_SECONDS / 2
        statuses = {o.scheme: o.status for o in result.outcomes}
        assert statuses[cooperative_pair[0]] == "gave-up"
        assert statuses[cooperative_pair[1]] == "gave-up"
        assert result.winner == "weighted-fallback"

    def test_split_racer_in_a_deadlined_race(self):
        """A split:N racer composes with the deadline plumbing and
        still wins easy races exactly."""
        program = parse_program(FIGURE2)
        config = PortfolioConfig(
            schemes=("split:2",), deadline_seconds=30.0, parallel=False
        )
        result = PortfolioSolver(config).optimize(program)
        assert result.winner == "split:2"
        assert result.exact

"""Unit tests for repro.linalg.unimodular."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.matrices import determinant, mat_mul, rank
from repro.linalg.unimodular import (
    complete_to_nonsingular,
    complete_to_unimodular,
    hermite_normal_form,
)


class TestHermiteNormalForm:
    def test_identity_fixed(self):
        identity = ((1, 0), (0, 1))
        assert hermite_normal_form(identity) == identity

    def test_gcd_in_pivot(self):
        hnf = hermite_normal_form(((4,), (6,)))
        assert hnf == ((2,), (0,))

    def test_preserves_rank(self):
        matrix = ((2, 4, 4), (-6, 6, 12), (10, 4, 16))
        assert rank(hermite_normal_form(matrix)) == rank(matrix)

    def test_pivots_nonnegative(self):
        hnf = hermite_normal_form(((-3, 1), (1, -2)))
        pivots = [next((x for x in row if x != 0), 0) for row in hnf]
        assert all(p >= 0 for p in pivots)

    def test_zero_rows_sink(self):
        hnf = hermite_normal_form(((1, 2), (2, 4)))
        assert hnf[1] == (0, 0)

    @given(
        st.integers(1, 3).flatmap(
            lambda n: st.lists(
                st.lists(st.integers(-8, 8), min_size=n, max_size=n),
                min_size=n,
                max_size=n,
            )
        )
    )
    @settings(max_examples=60)
    def test_determinant_magnitude_preserved(self, rows):
        """|det| is invariant under unimodular row operations."""
        assert abs(determinant(hermite_normal_form(rows))) == abs(
            determinant(rows)
        )


class TestCompleteToNonsingular:
    def test_empty_rows_give_identity_like(self):
        completed = complete_to_nonsingular([], 3)
        assert determinant(completed) != 0

    def test_keeps_given_rows_first(self):
        completed = complete_to_nonsingular([(1, -1)], 2)
        assert completed[0] == (1, -1)
        assert determinant(completed) != 0

    def test_rejects_dependent_rows(self):
        with pytest.raises(ValueError):
            complete_to_nonsingular([(1, 1), (2, 2)], 2)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            complete_to_nonsingular([(1, 0, 0)], 2)

    def test_full_rows_returned_as_is(self):
        rows = [(0, 1), (1, 0)]
        assert complete_to_nonsingular(rows, 2) == ((0, 1), (1, 0))

    @given(st.lists(st.integers(-5, 5), min_size=2, max_size=4))
    @settings(max_examples=60)
    def test_single_row_completion(self, row):
        if all(x == 0 for x in row):
            return
        size = len(row)
        completed = complete_to_nonsingular([tuple(row)], size)
        assert completed[0] == tuple(row)
        assert determinant(completed) != 0


class TestCompleteToUnimodular:
    def test_diagonal_layout_completion(self):
        # The (1 -1) diagonal hyperplane completes to a unimodular
        # data transformation.
        completed = complete_to_unimodular([(1, -1)], 2)
        assert completed[0] == (1, -1)
        assert determinant(completed) in (1, -1)

    def test_column_major_completion(self):
        completed = complete_to_unimodular([(0, 1)], 2)
        assert determinant(completed) in (1, -1)

    def test_three_dimensional(self):
        completed = complete_to_unimodular([(1, 0, 0), (0, 1, 0)], 3)
        assert determinant(completed) in (1, -1)

    @given(st.lists(st.integers(-4, 4), min_size=2, max_size=4))
    @settings(max_examples=80)
    def test_primitive_rows_usually_unimodular(self, row):
        """For primitive rows the completion is nonsingular and keeps
        the row; unimodularity holds whenever the search succeeds."""
        from repro.linalg.vectors import gcd_many

        if all(x == 0 for x in row):
            return
        divisor = gcd_many(row)
        primitive = tuple(x // divisor for x in row)
        completed = complete_to_unimodular([primitive], len(primitive))
        assert completed[0] == primitive
        assert determinant(completed) != 0

"""Unit tests for repro.linalg.matrices."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.matrices import (
    copy_matrix,
    determinant,
    identity_matrix,
    inverse_integer,
    inverse_rational,
    is_unimodular,
    mat_equal,
    mat_mul,
    mat_transpose,
    mat_vec,
    rank,
)

square_matrices = st.integers(1, 4).flatmap(
    lambda n: st.lists(
        st.lists(st.integers(-6, 6), min_size=n, max_size=n),
        min_size=n,
        max_size=n,
    )
)


class TestBasics:
    def test_identity(self):
        assert identity_matrix(2) == ((1, 0), (0, 1))

    def test_copy_rejects_ragged(self):
        with pytest.raises(ValueError):
            copy_matrix([[1, 2], [3]])

    def test_transpose(self):
        assert mat_transpose(((1, 2, 3), (4, 5, 6))) == ((1, 4), (2, 5), (3, 6))

    def test_transpose_empty(self):
        assert mat_transpose(()) == ()

    def test_mat_equal(self):
        assert mat_equal([[1, 2]], ((1, 2),))


class TestMul:
    def test_simple_product(self):
        product = mat_mul(((1, 2), (3, 4)), ((0, 1), (1, 0)))
        assert product == ((2, 1), (4, 3))

    def test_identity_neutral(self):
        matrix = ((3, -1), (2, 5))
        assert mat_mul(matrix, identity_matrix(2)) == matrix
        assert mat_mul(identity_matrix(2), matrix) == matrix

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            mat_mul(((1, 2),), ((1, 2),))

    def test_mat_vec(self):
        assert mat_vec(((1, 2), (3, 4)), (1, 1)) == (3, 7)

    def test_mat_vec_mismatch(self):
        with pytest.raises(ValueError):
            mat_vec(((1, 2),), (1, 2, 3))


class TestDeterminant:
    def test_2x2(self):
        assert determinant(((1, 2), (3, 4))) == -2

    def test_singular(self):
        assert determinant(((1, 2), (2, 4))) == 0

    def test_3x3(self):
        assert determinant(((2, 0, 0), (0, 3, 0), (0, 0, 4))) == 24

    def test_permutation_sign(self):
        assert determinant(((0, 1), (1, 0))) == -1

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            determinant(((1, 2, 3),))

    def test_empty_matrix(self):
        assert determinant(()) == 1

    def test_needs_pivot_swap(self):
        assert determinant(((0, 2), (3, 0))) == -6

    @given(square_matrices)
    @settings(max_examples=60)
    def test_matches_fraction_elimination(self, rows):
        """Bareiss agrees with straightforward rational elimination."""
        n = len(rows)
        work = [[Fraction(x) for x in row] for row in rows]
        det = Fraction(1)
        for col in range(n):
            pivot_row = next(
                (r for r in range(col, n) if work[r][col] != 0), None
            )
            if pivot_row is None:
                det = Fraction(0)
                break
            if pivot_row != col:
                work[col], work[pivot_row] = work[pivot_row], work[col]
                det = -det
            det *= work[col][col]
            pivot = work[col][col]
            for r in range(col + 1, n):
                factor = work[r][col] / pivot
                work[r] = [a - factor * b for a, b in zip(work[r], work[col])]
        assert determinant(rows) == det

    @given(square_matrices, square_matrices)
    @settings(max_examples=40)
    def test_multiplicative(self, left, right):
        if len(left) != len(right):
            return
        assert determinant(mat_mul(left, right)) == determinant(
            left
        ) * determinant(right)


class TestRank:
    def test_full_rank(self):
        assert rank(((1, 0), (0, 1))) == 2

    def test_dependent_rows(self):
        assert rank(((1, 2), (2, 4))) == 1

    def test_zero_matrix(self):
        assert rank(((0, 0), (0, 0))) == 0

    def test_wide_matrix(self):
        assert rank(((1, 0, 1), (0, 1, 1))) == 2

    def test_tall_matrix(self):
        assert rank(((1, 0), (0, 1), (1, 1))) == 2

    def test_empty(self):
        assert rank(()) == 0


class TestInverse:
    def test_inverse_rational(self):
        inverse = inverse_rational(((1, 2), (3, 4)))
        assert inverse == (
            (Fraction(-2), Fraction(1)),
            (Fraction(3, 2), Fraction(-1, 2)),
        )

    def test_singular_raises(self):
        with pytest.raises(ValueError):
            inverse_rational(((1, 2), (2, 4)))

    def test_inverse_integer_unimodular(self):
        matrix = ((1, 1), (0, 1))
        assert inverse_integer(matrix) == ((1, -1), (0, 1))

    def test_inverse_integer_rejects_non_unimodular(self):
        with pytest.raises(ValueError):
            inverse_integer(((2, 0), (0, 1)))

    @given(square_matrices)
    @settings(max_examples=40)
    def test_inverse_roundtrip(self, rows):
        if determinant(rows) == 0:
            return
        inverse = inverse_rational(rows)
        n = len(rows)
        product = tuple(
            tuple(
                sum(Fraction(rows[i][k]) * inverse[k][j] for k in range(n))
                for j in range(n)
            )
            for i in range(n)
        )
        expected = tuple(
            tuple(Fraction(1 if i == j else 0) for j in range(n))
            for i in range(n)
        )
        assert product == expected


class TestIsUnimodular:
    def test_identity(self):
        assert is_unimodular(identity_matrix(3))

    def test_interchange(self):
        assert is_unimodular(((0, 1), (1, 0)))

    def test_skew(self):
        assert is_unimodular(((1, 5), (0, 1)))

    def test_scaling_not_unimodular(self):
        assert not is_unimodular(((2, 0), (0, 1)))

    def test_non_square(self):
        assert not is_unimodular(((1, 0, 0), (0, 1, 0)))

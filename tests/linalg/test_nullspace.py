"""Unit tests for repro.linalg.nullspace."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.matrices import mat_vec, mat_transpose, rank
from repro.linalg.nullspace import left_nullspace_basis, nullspace_basis
from repro.linalg.vectors import dot, gcd_many, lex_positive


class TestNullspaceBasis:
    def test_full_rank_square(self):
        assert nullspace_basis(((1, 0), (0, 1))) == []

    def test_single_row(self):
        # y . (1 1) = 0 over 2-D: the diagonal hyperplane family.
        basis = nullspace_basis(((1, 1),))
        assert len(basis) == 1
        assert dot((1, 1), basis[0]) == 0

    def test_zero_rows_gives_standard_basis(self):
        basis = nullspace_basis(((0, 0, 0),))
        assert len(basis) == 3

    def test_empty_matrix_all_space(self):
        # No constraints: null space is everything.
        basis = nullspace_basis(())
        assert basis == []

    def test_known_kernel(self):
        # Kernel of [[1, 2, 3]] has dimension 2.
        basis = nullspace_basis(((1, 2, 3),))
        assert len(basis) == 2
        for vector in basis:
            assert dot((1, 2, 3), vector) == 0

    def test_basis_vectors_canonical(self):
        basis = nullspace_basis(((3, 6),))
        assert len(basis) == 1
        vector = basis[0]
        assert gcd_many(vector) == 1
        assert lex_positive(vector)

    @given(
        st.integers(1, 3).flatmap(
            lambda rows: st.integers(1, 4).flatmap(
                lambda cols: st.lists(
                    st.lists(st.integers(-5, 5), min_size=cols, max_size=cols),
                    min_size=rows,
                    max_size=rows,
                )
            )
        )
    )
    @settings(max_examples=80)
    def test_rank_nullity_and_membership(self, rows):
        """rank + nullity == cols, and A v == 0 for every basis vector."""
        cols = len(rows[0])
        basis = nullspace_basis(rows)
        assert rank(rows) + len(basis) == cols
        for vector in basis:
            assert all(component == 0 for component in mat_vec(rows, vector))
        # Basis must be independent.
        if basis:
            assert rank(basis) == len(basis)


class TestLeftNullspace:
    def test_paper_q1_delta(self):
        # Figure 2, array Q1: delta = (1 1); the hyperplane vectors with
        # y . delta = 0 are spanned by (1 -1) -- the diagonal layout.
        basis = left_nullspace_basis(mat_transpose(((1, 1),)))
        assert basis == [(1, -1)]

    def test_paper_q2_delta(self):
        # Figure 2, array Q2: delta = (1 0) -> layout (0 1), column-major.
        basis = left_nullspace_basis(mat_transpose(((1, 0),)))
        assert basis == [(0, 1)]

    @given(st.lists(st.integers(-6, 6), min_size=2, max_size=4))
    @settings(max_examples=60)
    def test_left_nullspace_annihilates_columns(self, column):
        if all(c == 0 for c in column):
            return
        matrix = tuple((c,) for c in column)  # k x 1 column matrix
        basis = left_nullspace_basis(matrix)
        assert len(basis) == len(column) - 1
        for row in basis:
            assert dot(row, column) == 0

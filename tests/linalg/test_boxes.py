"""Unit tests for repro.linalg.boxes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.boxes import affine_range_over_box, box_corners
from repro.linalg.vectors import dot


class TestAffineRangeOverBox:
    def test_positive_coefficients(self):
        assert affine_range_over_box((1, 1), 0, ((0, 3), (0, 4))) == (0, 7)

    def test_negative_coefficients(self):
        assert affine_range_over_box((-1,), 0, ((2, 5),)) == (-5, -2)

    def test_constant_only(self):
        assert affine_range_over_box((), 7, ()) == (7, 7)

    def test_diagonal_inflation(self):
        # The diagonal layout's first coordinate i - j over an NxN array
        # spans 2N - 1 values -- the data-space inflation of footnote 2.
        low, high = affine_range_over_box((1, -1), 0, ((0, 9), (0, 9)))
        assert (low, high) == (-9, 9)

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            affine_range_over_box((1,), 0, ((0, 1), (0, 1)))

    def test_empty_box_raises(self):
        with pytest.raises(ValueError):
            affine_range_over_box((1,), 0, ((3, 2),))

    @given(
        st.integers(1, 4).flatmap(
            lambda k: st.tuples(
                st.lists(st.integers(-6, 6), min_size=k, max_size=k),
                st.lists(
                    st.tuples(st.integers(-5, 5), st.integers(0, 6)),
                    min_size=k,
                    max_size=k,
                ),
            )
        ),
        st.integers(-10, 10),
    )
    @settings(max_examples=80)
    def test_matches_corner_enumeration(self, coeffs_and_spans, constant):
        """The O(k) min/max equals brute-force corner evaluation."""
        coefficients, spans = coeffs_and_spans
        box = [(low, low + width) for (low, width) in spans]
        low, high = affine_range_over_box(coefficients, constant, box)
        corner_values = [
            dot(coefficients, corner) + constant for corner in box_corners(box)
        ]
        assert low == min(corner_values)
        assert high == max(corner_values)


class TestBoxCorners:
    def test_counts(self):
        corners = list(box_corners(((0, 1), (3, 4))))
        assert len(corners) == 4
        assert (0, 3) in corners and (1, 4) in corners

    def test_degenerate_dimension(self):
        corners = set(box_corners(((2, 2),)))
        assert corners == {(2,), (2, 2)[:1]}

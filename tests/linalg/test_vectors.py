"""Unit tests for repro.linalg.vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg.vectors import (
    canonical_hyperplane_vector,
    dot,
    gcd_many,
    is_zero_vector,
    lex_positive,
    normalize_primitive,
    vec_add,
    vec_scale,
    vec_sub,
)


class TestGcdMany:
    def test_empty_is_zero(self):
        assert gcd_many([]) == 0

    def test_single_value(self):
        assert gcd_many([6]) == 6

    def test_negative_values(self):
        assert gcd_many([-4, 6]) == 2

    def test_coprime(self):
        assert gcd_many([3, 5, 7]) == 1

    def test_all_zero(self):
        assert gcd_many([0, 0]) == 0

    def test_zero_and_value(self):
        assert gcd_many([0, 9]) == 9


class TestIsZeroVector:
    def test_zero(self):
        assert is_zero_vector((0, 0, 0))

    def test_nonzero(self):
        assert not is_zero_vector((0, 1, 0))

    def test_empty(self):
        assert is_zero_vector(())


class TestNormalizePrimitive:
    def test_scales_down(self):
        assert normalize_primitive((2, -2)) == (1, -1)

    def test_already_primitive(self):
        assert normalize_primitive((1, -2)) == (1, -2)

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            normalize_primitive((0, 0))

    def test_keeps_sign(self):
        assert normalize_primitive((-2, 4)) == (-1, 2)


class TestLexPositive:
    def test_positive_leading(self):
        assert lex_positive((1, -5))

    def test_negative_leading(self):
        assert not lex_positive((-1, 5))

    def test_zero_then_positive(self):
        assert lex_positive((0, 3))

    def test_zero_vector(self):
        assert not lex_positive((0, 0))


class TestCanonicalHyperplaneVector:
    def test_paper_footnote2_example(self):
        # Footnote 2: (2 -2) names the same diagonal family as (1 -1).
        assert canonical_hyperplane_vector((2, -2)) == (1, -1)

    def test_sign_flip(self):
        assert canonical_hyperplane_vector((0, -3)) == (0, 1)

    def test_idempotent(self):
        vector = canonical_hyperplane_vector((6, -4))
        assert canonical_hyperplane_vector(vector) == vector

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            canonical_hyperplane_vector((0, 0, 0))

    @given(
        st.lists(st.integers(-50, 50), min_size=1, max_size=5),
        st.integers(min_value=-7, max_value=7).filter(lambda k: k != 0),
    )
    def test_scale_invariance(self, vector, factor):
        """Canonical form is invariant under nonzero integer scaling."""
        if all(component == 0 for component in vector):
            return
        scaled = [component * factor for component in vector]
        assert canonical_hyperplane_vector(vector) == canonical_hyperplane_vector(
            scaled
        )

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=5))
    def test_canonical_is_primitive_and_lex_positive(self, vector):
        if all(component == 0 for component in vector):
            return
        canonical = canonical_hyperplane_vector(vector)
        assert gcd_many(canonical) == 1
        assert lex_positive(canonical)


class TestDot:
    def test_paper_point_multiplication(self):
        # Section 2: (1 -1) . (5 3) == (1 -1) . (7 5) -- same diagonal.
        assert dot((1, -1), (5, 3)) == dot((1, -1), (7, 5))

    def test_different_diagonals(self):
        assert dot((1, -1), (5, 3)) != dot((1, -1), (5, 4))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            dot((1, 2), (1, 2, 3))

    @given(
        st.lists(st.integers(-100, 100), min_size=1, max_size=6),
        st.lists(st.integers(-100, 100), min_size=1, max_size=6),
    )
    def test_commutative(self, left, right):
        if len(left) != len(right):
            left = left[: len(right)]
            right = right[: len(left)]
        assert dot(left, right) == dot(right, left)


class TestVectorArithmetic:
    def test_add(self):
        assert vec_add((1, 2), (3, -5)) == (4, -3)

    def test_sub(self):
        assert vec_sub((1, 2), (3, -5)) == (-2, 7)

    def test_scale(self):
        assert vec_scale((1, -2, 0), 3) == (3, -6, 0)

    def test_add_length_mismatch(self):
        with pytest.raises(ValueError):
            vec_add((1,), (1, 2))

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=6))
    def test_sub_self_is_zero(self, vector):
        assert is_zero_vector(vec_sub(vector, vector))

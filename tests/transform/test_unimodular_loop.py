"""Unit tests for repro.transform.unimodular_loop."""

import pytest

from repro.linalg.matrices import identity_matrix, mat_mul
from repro.transform.unimodular_loop import (
    LoopTransform,
    compose,
    identity_transform,
    permutation_transform,
    reversal_transform,
    skew_transform,
)


class TestConstruction:
    def test_identity(self):
        transform = identity_transform(3)
        assert transform.is_identity
        assert transform.innermost_direction() == (0, 0, 1)

    def test_non_unimodular_rejected(self):
        with pytest.raises(ValueError):
            LoopTransform.create("bad", ((2, 0), (0, 1)))

    def test_interchange(self):
        transform = permutation_transform((1, 0))
        assert transform.matrix == ((0, 1), (1, 0))
        # After interchange the new innermost loop is the old outer one.
        assert transform.innermost_direction() == (1, 0)

    def test_bad_permutation_rejected(self):
        with pytest.raises(ValueError):
            permutation_transform((0, 0))

    def test_identity_permutation_named_identity(self):
        assert permutation_transform((0, 1)).name == "identity"

    def test_reversal(self):
        transform = reversal_transform(2, 1)
        assert transform.matrix == ((1, 0), (0, -1))
        assert transform.innermost_direction() == (0, -1)

    def test_reversal_out_of_range(self):
        with pytest.raises(ValueError):
            reversal_transform(2, 5)

    def test_skew(self):
        transform = skew_transform(2, 0, 1, 2)
        assert transform.matrix == ((1, 2), (0, 1))
        # Skewing the outer loop by the inner changes the innermost
        # old-space step.
        assert transform.innermost_direction() == (-2, 1)

    def test_skew_same_loop_rejected(self):
        with pytest.raises(ValueError):
            skew_transform(2, 1, 1, 1)


class TestApplication:
    def test_roundtrip(self):
        transform = skew_transform(3, 0, 2, 1)
        point = (3, 4, 5)
        assert transform.original_iteration(
            transform.apply_to_iteration(point)
        ) == point

    def test_interchange_swaps(self):
        transform = permutation_transform((1, 0))
        assert transform.apply_to_iteration((3, 9)) == (9, 3)


class TestCompose:
    def test_matrix_product(self):
        outer = permutation_transform((1, 0))
        inner = skew_transform(2, 0, 1, 1)
        composed = compose(outer, inner)
        assert composed.matrix == mat_mul(outer.matrix, inner.matrix)

    def test_depth_mismatch(self):
        with pytest.raises(ValueError):
            compose(identity_transform(2), identity_transform(3))

    def test_inverse_consistency(self):
        composed = compose(
            permutation_transform((1, 0)), skew_transform(2, 0, 1, 3)
        )
        assert mat_mul(composed.matrix, composed.inverse) == identity_matrix(2)


class TestInnermostDirection:
    def test_figure2_semantics(self):
        """Identity keeps direction (0 1); interchange makes it (1 0) --
        which is exactly why the Figure 2 layouts flip."""
        assert identity_transform(2).innermost_direction() == (0, 1)
        assert permutation_transform((1, 0)).innermost_direction() == (1, 0)

    def test_all_3d_permutations_give_unit_directions(self):
        from itertools import permutations

        for order in permutations(range(3)):
            direction = permutation_transform(order).innermost_direction()
            assert sorted(abs(x) for x in direction) == [0, 0, 1]

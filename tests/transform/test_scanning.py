"""Unit tests for repro.transform.scanning (Fourier-Motzkin scanning)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform.scanning import scan_transformed_box
from repro.transform.unimodular_loop import (
    compose,
    identity_transform,
    permutation_transform,
    reversal_transform,
    skew_transform,
)


class TestIdentityScan:
    def test_lexicographic_box_order(self):
        points = list(scan_transformed_box(identity_transform(2), ((0, 1), (0, 2))))
        assert points == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]


class TestPermutationScan:
    def test_interchange_order(self):
        points = list(
            scan_transformed_box(permutation_transform((1, 0)), ((0, 1), (0, 2)))
        )
        # Interchanged: the old inner index varies slowest now.
        assert points == [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]

    def test_covers_every_point_once(self):
        box = ((0, 3), (0, 2))
        points = list(
            scan_transformed_box(permutation_transform((1, 0)), box)
        )
        assert len(points) == 12
        assert len(set(points)) == 12


class TestReversalScan:
    def test_inner_reversal_order(self):
        points = list(
            scan_transformed_box(reversal_transform(2, 1), ((0, 0), (0, 2)))
        )
        assert points == [(0, 2), (0, 1), (0, 0)]


class TestSkewScan:
    def test_skew_covers_box(self):
        transform = skew_transform(2, 0, 1, 1)
        box = ((0, 2), (0, 2))
        points = list(scan_transformed_box(transform, box))
        assert sorted(points) == sorted(
            (i, j) for i in range(3) for j in range(3)
        )

    def test_skew_order_is_wavefront(self):
        transform = skew_transform(2, 0, 1, 1)
        box = ((0, 2), (0, 2))
        points = list(scan_transformed_box(transform, box))
        # The transformed first coordinate i + j must be non-decreasing.
        waves = [i + j for (i, j) in points]
        assert waves == sorted(waves)


_transforms = st.sampled_from(
    [
        identity_transform(2),
        permutation_transform((1, 0)),
        reversal_transform(2, 0),
        reversal_transform(2, 1),
        skew_transform(2, 0, 1, 1),
        skew_transform(2, 0, 1, 2),
        compose(permutation_transform((1, 0)), skew_transform(2, 0, 1, 1)),
    ]
)


class TestScanProperties:
    @given(
        _transforms,
        st.tuples(st.integers(0, 3), st.integers(0, 3)),
        st.tuples(st.integers(0, 3), st.integers(0, 3)),
    )
    @settings(max_examples=60)
    def test_bijection_with_box(self, transform, lows, widths):
        """Scanning visits exactly the box, each point once."""
        box = tuple(
            (low, low + width) for low, width in zip(lows, widths)
        )
        points = list(scan_transformed_box(transform, box))
        expected = {
            (i, j)
            for i in range(box[0][0], box[0][1] + 1)
            for j in range(box[1][0], box[1][1] + 1)
        }
        assert set(points) == expected
        assert len(points) == len(expected)

    @given(
        _transforms,
        st.tuples(st.integers(0, 3), st.integers(0, 3)),
    )
    @settings(max_examples=40)
    def test_transformed_order_is_lexicographic(self, transform, widths):
        box = tuple((0, width) for width in widths)
        points = list(scan_transformed_box(transform, box))
        transformed = [transform.apply_to_iteration(p) for p in points]
        assert transformed == sorted(transformed)

    def test_3d_permutation(self):
        transform = permutation_transform((2, 0, 1))
        box = ((0, 1), (0, 1), (0, 1))
        points = list(scan_transformed_box(transform, box))
        assert len(points) == 8
        assert len(set(points)) == 8

"""Unit tests for repro.transform.legality and repro.transform.catalog."""

import pytest

from repro.ir.dependence import analyze_nest_dependences
from repro.ir.expr import AffineExpr
from repro.ir.loops import Loop, LoopNest
from repro.ir.reference import AccessKind, ArrayRef
from repro.transform.catalog import candidate_transforms, legal_transforms
from repro.transform.legality import is_legal, transformed_distances
from repro.transform.unimodular_loop import (
    identity_transform,
    permutation_transform,
    reversal_transform,
)

_i = AffineExpr.var("i")
_j = AffineExpr.var("j")


def _nest(body):
    return LoopNest("n", (Loop("i", 0, 9), Loop("j", 0, 9)), tuple(body))


class TestLegality:
    def test_identity_always_legal(self):
        body = [
            ArrayRef("A", (_j, _i), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert info.has_unknown
        assert is_legal(info, identity_transform(2))

    def test_unknown_blocks_everything_else(self):
        body = [
            ArrayRef("A", (_j, _i), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert not is_legal(info, permutation_transform((1, 0)))

    def test_interchange_legal_for_fully_positive_distance(self):
        # Distance (1, 1): stays lex-positive after interchange.
        body = [
            ArrayRef("A", (_i - 1, _j - 1), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert info.distance_vectors() == ((1, 1),)
        assert is_legal(info, permutation_transform((1, 0)))

    def test_interchange_illegal_for_anti_distance(self):
        # Distance (1, -1): interchange makes it (-1, 1) -- illegal.
        body = [
            ArrayRef("A", (_i - 1, _j + 1), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert info.distance_vectors() == ((1, -1),)
        assert not is_legal(info, permutation_transform((1, 0)))

    def test_reversal_illegal_for_carried_dependence(self):
        body = [
            ArrayRef("A", (_i, _j - 1), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert not is_legal(info, reversal_transform(2, 1))

    def test_transformed_distances(self):
        body = [
            ArrayRef("A", (_i - 1, _j - 2), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        distances = transformed_distances(info, permutation_transform((1, 0)))
        assert distances == ((2, 1),)


class TestCatalog:
    def test_identity_comes_first(self):
        transforms = candidate_transforms(2)
        assert transforms[0].is_identity

    def test_permutation_count(self):
        assert len(candidate_transforms(3)) == 6

    def test_reversals_add_transforms(self):
        plain = candidate_transforms(2)
        with_rev = candidate_transforms(2, include_reversals=True)
        assert len(with_rev) > len(plain)

    def test_skews_add_new_directions(self):
        transforms = candidate_transforms(2, skew_factors=(1, 2))
        directions = {t.innermost_direction() for t in transforms}
        assert (-1, 1) in directions
        assert (1, -1) in directions or (-2, 1) in directions

    def test_zero_skew_factor_ignored(self):
        assert len(candidate_transforms(2, skew_factors=(0,))) == len(
            candidate_transforms(2)
        )

    def test_no_duplicate_matrices(self):
        transforms = candidate_transforms(
            3, include_reversals=True, skew_factors=(1, 2)
        )
        matrices = [t.matrix for t in transforms]
        assert len(matrices) == len(set(matrices))

    def test_legal_transforms_filters(self):
        # A nest with a transpose write: only identity survives.
        body = [
            ArrayRef("A", (_j, _i), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ]
        legal = legal_transforms(_nest(body))
        assert [t.name for t in legal] == ["identity"]

    def test_read_only_nest_everything_legal(self):
        body = [
            ArrayRef("A", (_i, _j), AccessKind.READ),
            ArrayRef("B", (_j, _i), AccessKind.READ),
        ]
        legal = legal_transforms(_nest(body))
        assert len(legal) == len(candidate_transforms(2))

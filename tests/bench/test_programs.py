"""Tests for the five Table 1 benchmark programs."""

import pytest

from repro.bench.generator import (
    PATTERNS,
    SyntheticSpec,
    extents_for_data_size,
    generate_program,
    patterns_with_home,
)
from repro.bench.programs import (
    BENCHMARK_NAMES,
    TABLE1_REFERENCE,
    benchmark_build_options,
    build_benchmark,
)
from repro.csp.enhanced import EnhancedSolver
from repro.ir.validate import validate_program
from repro.opt.network_builder import build_layout_network


class TestTable1Characteristics:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_programs_validate(self, name):
        validate_program(build_benchmark(name))

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_data_size_within_five_percent(self, name):
        program = build_benchmark(name)
        _, paper_kb = TABLE1_REFERENCE[name]
        measured_kb = program.total_data_bytes() / 1024
        assert measured_kb == pytest.approx(paper_kb, rel=0.05)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_networks_satisfiable(self, name):
        """The planted home assignment guarantees every benchmark
        network has a solution (the paper's Table 2/3 precondition)."""
        program = build_benchmark(name)
        result = build_layout_network(program, benchmark_build_options())
        solved = EnhancedSolver().solve(result.network)
        assert solved.satisfiable
        assert result.network.is_solution(solved.assignment)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_declared_array_referenced(self, name):
        program = build_benchmark(name)
        assert program.referenced_arrays() == program.array_names()

    def test_benchmark_caching(self):
        assert build_benchmark("MxM") is build_benchmark("MxM")

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_benchmark("SPECint")

    def test_difficulty_ordering_tracks_paper(self):
        """The paper's hardest instances (Shape) have the largest
        domains; MxM the smallest."""
        domains = {
            name: build_layout_network(
                build_benchmark(name), benchmark_build_options()
            ).domain_size
            for name in BENCHMARK_NAMES
        }
        assert domains["MxM"] == min(domains.values())
        assert domains["Shape"] >= domains["Radar"]


class TestMxM:
    def test_structure(self):
        program = build_benchmark("MxM")
        assert len(program.nests) == 2
        assert program.array_names() == ("A", "B", "T", "C", "D")
        for nest in program.nests:
            assert nest.depth == 3

    def test_all_permutations_legal(self):
        """The accumulation dependence is loop-independent, so every
        loop permutation of a matmul nest is legal."""
        from repro.transform.catalog import legal_transforms

        program = build_benchmark("MxM")
        for nest in program.nests:
            legal = legal_transforms(nest)
            assert len(legal) == 6


class TestGenerator:
    def test_deterministic(self):
        spec = SyntheticSpec("g", (32, 32, 32), 4, seed=7)
        first = generate_program(spec)
        second = generate_program(spec)
        assert str(first) == str(second)

    def test_seed_changes_program(self):
        base = SyntheticSpec("g", (32,) * 6, 5, seed=1)
        other = SyntheticSpec("g", (32,) * 6, 5, seed=2)
        assert str(generate_program(base)) != str(generate_program(other))

    def test_single_write_per_nest(self):
        program = generate_program(SyntheticSpec("g", (32,) * 8, 6, seed=3))
        for nest in program.nests:
            writes = [ref for ref in nest.body if ref.is_write]
            assert len(writes) == 1

    def test_generated_programs_validate(self):
        for seed in range(5):
            spec = SyntheticSpec("g", (24,) * 6, 5, seed=seed)
            validate_program(generate_program(spec))

    def test_planted_solution_exists(self):
        """For any seed, the generated network must be satisfiable."""
        for seed in range(4):
            spec = SyntheticSpec(
                "g", (32,) * 8, 7, pattern_variety=0.3, seed=seed
            )
            program = generate_program(spec)
            network = build_layout_network(
                program, benchmark_build_options()
            ).network
            assert EnhancedSolver().solve(network).satisfiable, seed

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec("g", (), 3)
        with pytest.raises(ValueError):
            SyntheticSpec("g", (32,), 0)
        with pytest.raises(ValueError):
            SyntheticSpec("g", (32,), 3, arrays_per_nest=(1, 2))
        with pytest.raises(ValueError):
            SyntheticSpec("g", (32,), 3, pattern_variety=1.5)

    def test_pattern_homes_are_consistent(self):
        """Each palette entry's declared home is the canonical left
        null space of its identity-direction delta."""
        from repro.ir.reference import ArrayRef
        from repro.layout.locality import access_delta, layout_for_deltas

        for name, (make, _, home) in PATTERNS.items():
            subscripts = make("i", "j")
            ref = ArrayRef("Q", subscripts)
            delta = access_delta(ref, ("i", "j"), (0, 1))
            layout = layout_for_deltas([delta], 2)
            assert layout is not None, name
            assert layout.rows[0] == home, name

    def test_patterns_with_home_partition(self):
        all_patterns = set(PATTERNS)
        grouped = set()
        for home in {(1, 0), (0, 1), (1, -1), (1, -2)}:
            grouped |= set(patterns_with_home(home))
        assert grouped == all_patterns


class TestExtentsForDataSize:
    def test_close_fit(self):
        extents = extents_for_data_size(1024 * 1024, 16)
        total = sum(4 * e * e for e in extents)
        assert total == pytest.approx(1024 * 1024, rel=0.05)

    def test_count_respected(self):
        assert len(extents_for_data_size(500_000, 7)) == 7

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            extents_for_data_size(1000, 0)

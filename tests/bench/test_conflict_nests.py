"""Tests for the conflicting-nest machinery of the generator."""

import pytest

from repro.bench.generator import SyntheticSpec, generate_program
from repro.bench.programs import benchmark_build_options
from repro.csp.enhanced import EnhancedSolver
from repro.ir.validate import validate_program
from repro.opt.network_builder import build_layout_network


def _spec(conflicts: int, seed: int = 5) -> SyntheticSpec:
    return SyntheticSpec(
        name="g",
        array_extents=(48,) * 8,
        nest_count=8,
        arrays_per_nest=(2, 3),
        pattern_variety=0.2,
        conflict_nests=conflicts,
        seed=seed,
    )


class TestConflictNests:
    def test_conflict_nests_appended(self):
        program = generate_program(_spec(3))
        names = [nest.name for nest in program.nests]
        assert names[-3:] == ["conflict1", "conflict2", "conflict3"]
        assert len(program.nests) == 11

    def test_conflict_nests_have_top_weight(self):
        program = generate_program(_spec(2))
        clean_max = max(nest.weight for nest in program.nests[:8])
        for nest in program.nests[8:]:
            assert nest.weight > clean_max

    def test_conflict_arrays_subset_of_a_clean_nest(self):
        program = generate_program(_spec(3))
        clean_sets = [set(nest.arrays()) for nest in program.nests[:8]]
        for nest in program.nests[8:]:
            arrays = set(nest.arrays())
            assert any(arrays <= clean for clean in clean_sets)

    @pytest.mark.parametrize("seed", [5, 6, 7, 8])
    def test_network_remains_satisfiable(self, seed):
        """The conflict nests' pairs are unioned with clean pairs, so
        the planted home assignment must survive."""
        program = generate_program(_spec(3, seed=seed))
        network = build_layout_network(
            program, benchmark_build_options()
        ).network
        result = EnhancedSolver().solve(network)
        assert result.satisfiable, seed

    def test_programs_stay_valid(self):
        for seed in range(4):
            validate_program(generate_program(_spec(2, seed=seed)))

    def test_zero_conflicts_by_default(self):
        spec = SyntheticSpec("g", (48,) * 4, 4, seed=1)
        program = generate_program(spec)
        assert all(not n.name.startswith("conflict") for n in program.nests)

    def test_negative_conflicts_rejected(self):
        with pytest.raises(ValueError):
            _ = SyntheticSpec(
                "g", (48,) * 4, 4, conflict_nests=-1
            )

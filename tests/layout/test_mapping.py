"""Unit tests for repro.layout.mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.arrays import ArrayDecl
from repro.layout.layout import (
    Layout,
    antidiagonal,
    column_major,
    diagonal,
    row_major,
)
from repro.layout.mapping import LayoutMapping


class TestRowMajorMapping:
    def test_identity_transform(self):
        decl = ArrayDecl("A", (4, 6))
        mapping = LayoutMapping.create(decl, row_major(2))
        assert mapping.transform == ((1, 0), (0, 1))
        assert mapping.extents == (4, 6)
        assert mapping.strides == (6, 1)

    def test_offsets_match_c_order(self):
        decl = ArrayDecl("A", (4, 6))
        mapping = LayoutMapping.create(decl, row_major(2))
        assert mapping.offset_of((0, 0)) == 0
        assert mapping.offset_of((0, 1)) == 1
        assert mapping.offset_of((1, 0)) == 6
        assert mapping.offset_of((3, 5)) == 23

    def test_no_inflation(self):
        decl = ArrayDecl("A", (8, 8))
        assert LayoutMapping.create(decl, row_major(2)).inflation == 1.0


class TestColumnMajorMapping:
    def test_offsets_match_fortran_order(self):
        decl = ArrayDecl("A", (4, 6))
        mapping = LayoutMapping.create(decl, column_major(2))
        assert mapping.offset_of((0, 0)) == 0
        assert mapping.offset_of((1, 0)) == 1
        assert mapping.offset_of((0, 1)) == 4

    def test_no_inflation(self):
        decl = ArrayDecl("A", (5, 9))
        assert LayoutMapping.create(decl, column_major(2)).inflation == 1.0


class TestDiagonalMapping:
    def test_inflation_matches_footnote2(self):
        # Diagonal storage of an NxN array needs a (2N-1) x N box.
        decl = ArrayDecl("A", (8, 8))
        mapping = LayoutMapping.create(decl, diagonal())
        assert mapping.footprint_elements == (2 * 8 - 1) * 8
        assert mapping.inflation == pytest.approx((2 * 8 - 1) / 8)

    def test_same_diagonal_contiguity(self):
        # Elements on one diagonal are consecutive in memory.
        decl = ArrayDecl("A", (8, 8))
        mapping = LayoutMapping.create(decl, diagonal())
        step = abs(mapping.offset_of((6, 4)) - mapping.offset_of((5, 3)))
        assert step == 1

    def test_rank_mismatch_rejected(self):
        decl = ArrayDecl("A", (8, 8, 8))
        with pytest.raises(ValueError):
            LayoutMapping.create(decl, diagonal())


@st.composite
def _decl_and_layout(draw):
    rank = draw(st.integers(2, 3))
    extents = tuple(draw(st.integers(2, 6)) for _ in range(rank))
    decl = ArrayDecl("A", extents)
    if rank == 2:
        layout = draw(
            st.sampled_from(
                [row_major(2), column_major(2), diagonal(), antidiagonal(),
                 Layout(2, [(1, -2)]), Layout(2, [(2, -1)])]
            )
        )
    else:
        layout = draw(st.sampled_from([row_major(3), column_major(3)]))
    return decl, layout


class TestMappingProperties:
    @given(_decl_and_layout())
    @settings(max_examples=60)
    def test_injective_over_whole_array(self, decl_layout):
        """Every element gets a distinct in-range offset (no aliasing)."""
        decl, layout = decl_layout
        mapping = LayoutMapping.create(decl, layout)
        seen = set()
        from itertools import product

        for index in product(*[range(e) for e in decl.extents]):
            offset = mapping.offset_of(index)
            assert 0 <= offset < mapping.footprint_elements
            assert offset not in seen
            seen.add(offset)

    @given(_decl_and_layout())
    @settings(max_examples=40)
    def test_colocated_elements_share_fast_axis(self, decl_layout):
        """Elements the layout co-locates differ only in the last
        transformed coordinate, i.e. they sit within one 'row' of the
        transformed space."""
        decl, layout = decl_layout
        mapping = LayoutMapping.create(decl, layout)
        from itertools import product

        points = list(product(*[range(e) for e in decl.extents]))[:64]
        for a in points[:16]:
            for b in points[:16]:
                if layout.colocated(a, b):
                    offset_gap = abs(mapping.offset_of(a) - mapping.offset_of(b))
                    assert offset_gap < mapping.extents[-1]

    def test_byte_offset_scales_by_element_size(self):
        decl = ArrayDecl("A", (4, 4), "float64")
        mapping = LayoutMapping.create(decl, row_major(2))
        assert mapping.byte_offset_of((1, 1)) == mapping.offset_of((1, 1)) * 8

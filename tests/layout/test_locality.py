"""Unit tests for repro.layout.locality -- the Section 2 equations."""

import pytest

from repro.ir.expr import AffineExpr
from repro.ir.reference import ArrayRef
from repro.layout.layout import Layout, column_major, diagonal, row_major
from repro.layout.locality import (
    access_delta,
    has_spatial_locality,
    has_temporal_locality,
    layout_for_deltas,
    preferred_layout,
)

_i1 = AffineExpr.var("i1")
_i2 = AffineExpr.var("i2")
ORDER = ("i1", "i2")
INNER = (0, 1)  # the direction of two successive iterations
OUTER = (1, 0)  # after loop interchange


class TestAccessDelta:
    def test_q1_delta(self):
        # Q1[i1+i2][i2]: successive iterations step the element by (1, 1).
        ref = ArrayRef("Q1", (_i1 + _i2, _i2))
        assert access_delta(ref, ORDER, INNER) == (1, 1)

    def test_q2_delta(self):
        # Q2[i1+i2][i1]: step (1, 0).
        ref = ArrayRef("Q2", (_i1 + _i2, _i1))
        assert access_delta(ref, ORDER, INNER) == (1, 0)

    def test_temporal_delta(self):
        # Q[i1][i1] does not move with i2.
        ref = ArrayRef("Q", (_i1, _i1))
        assert access_delta(ref, ORDER, INNER) == (0, 0)


class TestPreferredLayout:
    def test_paper_q1_diagonal(self):
        """The paper's worked example: Q1 wants (1 -1)."""
        ref = ArrayRef("Q1", (_i1 + _i2, _i2))
        layout = preferred_layout(ref, ORDER, INNER)
        assert layout == diagonal()

    def test_paper_q2_column_major(self):
        """And Q2 wants (0 1)."""
        ref = ArrayRef("Q2", (_i1 + _i2, _i1))
        layout = preferred_layout(ref, ORDER, INNER)
        assert layout == column_major(2)

    def test_paper_interchange_flips(self):
        """After interchanging the Figure 2 loops the preferences swap:
        Q1 wants (0 1) and Q2 wants (1 -1)."""
        q1 = ArrayRef("Q1", (_i1 + _i2, _i2))
        q2 = ArrayRef("Q2", (_i1 + _i2, _i1))
        assert preferred_layout(q1, ORDER, OUTER) == column_major(2)
        assert preferred_layout(q2, ORDER, OUTER) == diagonal()

    def test_row_access_wants_row_major(self):
        ref = ArrayRef("Q", (_i1, _i2))
        assert preferred_layout(ref, ORDER, INNER) == row_major(2)

    def test_temporal_reference_has_no_preference(self):
        ref = ArrayRef("Q", (_i1, _i1))
        assert preferred_layout(ref, ORDER, INNER) is None


class TestSpatialTemporalPredicates:
    def test_spatial(self):
        assert has_spatial_locality(diagonal(), (1, 1))
        assert not has_spatial_locality(row_major(2), (1, 1))

    def test_temporal(self):
        assert has_temporal_locality((0, 0))
        assert not has_temporal_locality((0, 1))


class TestLayoutForDeltas:
    def test_all_zero_deltas_no_preference(self):
        assert layout_for_deltas([(0, 0)], 2) is None

    def test_empty_deltas_no_preference(self):
        assert layout_for_deltas([], 2) is None

    def test_spanning_deltas_no_layout(self):
        # Deltas spanning the whole plane admit no annihilating row.
        assert layout_for_deltas([(1, 0), (0, 1)], 2) is None

    def test_multiple_parallel_deltas(self):
        layout = layout_for_deltas([(1, 1), (2, 2)], 2)
        assert layout == diagonal()

    def test_3d_single_delta_full_layout(self):
        layout = layout_for_deltas([(0, 0, 1)], 3)
        assert layout is not None
        assert len(layout.rows) == 2
        for row in layout.rows:
            assert row[2] == 0  # every row annihilates (0,0,1)

    def test_3d_two_deltas_completed(self):
        # Null space of two independent deltas is 1-D; the layout is
        # completed to two rows with the locality row first.
        layout = layout_for_deltas([(0, 0, 1), (0, 1, 0)], 3)
        assert layout is not None
        assert layout.rows[0] == (1, 0, 0)

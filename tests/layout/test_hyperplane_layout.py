"""Unit tests for repro.layout.hyperplane and repro.layout.layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.hyperplane import Hyperplane
from repro.layout.layout import (
    Layout,
    antidiagonal,
    column_major,
    diagonal,
    row_major,
    standard_layouts,
)


class TestHyperplane:
    def test_canonicalizes_on_construction(self):
        assert Hyperplane((2, -2)) == Hyperplane((1, -1))

    def test_paper_same_diagonal(self):
        # Section 2: (5 3) and (7 5) share the (1 -1) diagonal.
        plane = Hyperplane((1, -1))
        assert plane.same_hyperplane((5, 3), (7, 5))

    def test_paper_different_diagonals(self):
        plane = Hyperplane((1, -1))
        assert not plane.same_hyperplane((5, 3), (5, 4))

    def test_row_major_constant_is_row_number(self):
        plane = Hyperplane((1, 0))
        assert plane.constant_for((7, 3)) == 7

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            Hyperplane((0, 0))

    def test_str(self):
        assert str(Hyperplane((1, -1))) == "(1  -1)"

    @given(st.lists(st.integers(-9, 9), min_size=2, max_size=4))
    @settings(max_examples=60)
    def test_membership_invariant_under_scaling(self, vector):
        if all(x == 0 for x in vector):
            return
        plane = Hyperplane(vector)
        scaled = Hyperplane([3 * x for x in vector])
        point_a = tuple(range(len(vector)))
        point_b = tuple(reversed(range(len(vector))))
        assert plane.same_hyperplane(point_a, point_b) == scaled.same_hyperplane(
            point_a, point_b
        )


class TestLayout:
    def test_row_major_2d(self):
        layout = row_major(2)
        assert layout.rows == ((1, 0),)
        assert layout.colocated((3, 0), (3, 7))
        assert not layout.colocated((3, 0), (4, 0))

    def test_column_major_3d_matches_paper(self):
        # Section 2's 3-D column-major example: Y1 = (0 0 1), Y2 = (0 1 0).
        layout = column_major(3)
        assert layout.rows == ((0, 0, 1), (0, 1, 0))
        # Same column: indices equal except the first dimension.
        assert layout.colocated((0, 4, 2), (9, 4, 2))
        assert not layout.colocated((0, 4, 2), (0, 5, 2))

    def test_diagonal(self):
        layout = diagonal()
        assert layout.colocated((5, 3), (7, 5))
        assert not layout.colocated((5, 3), (5, 4))

    def test_antidiagonal(self):
        layout = antidiagonal()
        assert layout.colocated((2, 3), (3, 2))

    def test_one_dimensional_layout(self):
        layout = Layout(1, [])
        assert layout.rows == ()
        assert layout.colocated((5,), (9,))  # trivially: no constraint rows

    def test_wrong_row_count_rejected(self):
        with pytest.raises(ValueError):
            Layout(3, [(1, 0, 0)])

    def test_dependent_rows_rejected(self):
        with pytest.raises(ValueError):
            Layout(3, [(1, 0, 0), (2, 0, 0)])

    def test_wrong_row_length_rejected(self):
        with pytest.raises(ValueError):
            Layout(2, [(1, 0, 0)])

    def test_rows_canonicalized(self):
        assert Layout(2, [(2, -2)]) == Layout(2, [(1, -1)])

    def test_hashable_and_equal(self):
        assert hash(row_major(2)) == hash(Layout(2, [(1, 0)]))

    def test_describe_known_names(self):
        assert "row-major" in row_major(2).describe()
        assert "column-major" in column_major(2).describe()
        assert "diagonal" in diagonal().describe()

    def test_standard_layouts_2d_match_figure1(self):
        layouts = standard_layouts(2)
        vectors = {layout.rows[0] for layout in layouts}
        assert vectors == {(1, 0), (0, 1), (1, -1), (1, 1)}

    def test_standard_layouts_1d(self):
        assert len(standard_layouts(1)) == 1

    def test_standard_layouts_3d(self):
        layouts = standard_layouts(3)
        assert row_major(3) in layouts and column_major(3) in layouts

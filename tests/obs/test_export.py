"""Exposition surfaces: Prometheus text, trace sink, JSON logs."""

import json
import logging
import math

import pytest

from repro.obs import capture
from repro.obs.export import (
    JsonLogFormatter,
    TraceJsonWriter,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.metrics import EFFORT_BUCKETS, MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "repro_cache_hits_total", {"shard": "0"}, help="Cache hits per shard."
    ).inc(3)
    registry.counter("repro_cache_hits_total", {"shard": "1"}).inc(1)
    registry.gauge("repro_uptime_seconds", help="Monotonic uptime.").set(12.5)
    histogram = registry.histogram(
        "repro_request_seconds",
        {"kind": "solve"},
        help="Request latency.",
        bounds=(0.01, 0.1, 1.0),
    )
    for value in (0.005, 0.05, 0.5, 5.0):
        histogram.observe(value)
    return registry


class TestPrometheusText:
    def test_counters_and_gauges_render_with_headers(self):
        text = prometheus_text(_sample_registry().snapshot())
        assert "# HELP repro_cache_hits_total Cache hits per shard." in text
        assert "# TYPE repro_cache_hits_total counter" in text
        assert 'repro_cache_hits_total{shard="0"} 3' in text
        assert 'repro_cache_hits_total{shard="1"} 1' in text
        assert "# TYPE repro_uptime_seconds gauge" in text
        assert "repro_uptime_seconds 12.5" in text
        # One TYPE header per metric family, not per series.
        assert text.count("# TYPE repro_cache_hits_total") == 1

    def test_histogram_renders_cumulative_buckets(self):
        text = prometheus_text(_sample_registry().snapshot())
        assert 'repro_request_seconds_bucket{kind="solve",le="0.01"} 1' in text
        assert 'repro_request_seconds_bucket{kind="solve",le="0.1"} 2' in text
        assert 'repro_request_seconds_bucket{kind="solve",le="1"} 3' in text
        assert 'repro_request_seconds_bucket{kind="solve",le="+Inf"} 4' in text
        assert 'repro_request_seconds_count{kind="solve"} 4' in text
        assert 'repro_request_seconds_sum{kind="solve"} 5.555' in text

    def test_output_parses_and_buckets_are_monotone(self):
        parsed = parse_prometheus_text(
            prometheus_text(_sample_registry().snapshot())
        )
        assert parsed["types"]["repro_request_seconds"] == "histogram"
        buckets = [
            (labels["le"], value)
            for series, labels, value in parsed["samples"]
            if series == "repro_request_seconds_bucket"
        ]
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][0] == "+Inf"

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        hostile = 'multi\nline "quoted" back\\slash'
        registry.counter("repro_events_total", {"detail": hostile}).inc()
        parsed = parse_prometheus_text(prometheus_text(registry.snapshot()))
        ((series, labels, value),) = [
            sample for sample in parsed["samples"]
        ]
        assert series == "repro_events_total"
        assert labels["detail"] == hostile
        assert value == 1

    def test_empty_snapshot_renders_empty(self):
        assert prometheus_text({"metrics": []}) == ""

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE broken nosuchkind\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("just_a_name_no_value\n")

    def test_parser_handles_inf(self):
        parsed = parse_prometheus_text('x_bucket{le="+Inf"} 3\nx_sum +Inf\n')
        assert parsed["samples"][1][2] == math.inf


class TestTraceJsonWriter:
    def test_one_complete_tree_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceJsonWriter(path) as writer:
            with capture("request", kind="solve") as captured:
                pass
            writer.write(captured.root.to_dict())
            writer.write({"name": "second", "start_ns": 0})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "request"
        assert json.loads(lines[1])["name"] == "second"

    def test_appends_rather_than_truncates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for index in range(2):
            with TraceJsonWriter(path) as writer:
                writer.write({"name": f"run{index}", "start_ns": 0})
        assert len(path.read_text().splitlines()) == 2

    def test_accepts_an_open_stream_without_closing_it(self, tmp_path):
        stream = open(tmp_path / "trace.jsonl", "w", encoding="utf-8")
        try:
            with TraceJsonWriter(stream) as writer:
                writer.write({"name": "x", "start_ns": 0})
            assert not stream.closed
        finally:
            stream.close()


class TestJsonLogFormatter:
    def _record(self, **extra) -> str:
        logger = logging.getLogger("repro.test.jsonlog")
        record = logger.makeRecord(
            logger.name,
            logging.WARNING,
            __file__,
            10,
            "corrupt shard %s",
            ("3",),
            None,
            extra=extra or None,
        )
        return JsonLogFormatter().format(record)

    def test_core_fields_and_message_interpolation(self):
        entry = json.loads(self._record())
        assert entry["level"] == "WARNING"
        assert entry["logger"] == "repro.test.jsonlog"
        assert entry["message"] == "corrupt shard 3"
        assert isinstance(entry["ts"], float)

    def test_extras_like_fingerprint_pass_through(self):
        entry = json.loads(self._record(fingerprint="deadbeef", request_id=7))
        assert entry["fingerprint"] == "deadbeef"
        assert entry["request_id"] == 7

    def test_unserializable_extras_fall_back_to_repr(self):
        entry = json.loads(self._record(payload=object()))
        assert entry["payload"].startswith("<object object")

    def test_every_line_is_valid_json(self):
        # The property production cares about: no format() output can
        # corrupt a JSON-lines stream.
        entry = self._record(fingerprint='quo"te\nnewline')
        assert json.loads(entry)["fingerprint"] == 'quo"te\nnewline'

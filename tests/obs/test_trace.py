"""Span trees: timing, no-op mode, wire round-trip, re-parenting."""

import json

import pytest

from repro.obs import trace
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    recording,
    span,
    span_from_dict,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts (and the suite stays) in the disabled state."""
    trace.set_enabled(False)
    yield
    trace.set_enabled(False)


class TestSpan:
    def test_timing_and_end_is_idempotent(self):
        root = Span("request")
        first_end = root.end().end_ns
        assert root.end().end_ns == first_end
        assert root.duration_ns >= 0
        assert root.duration_seconds == root.duration_ns / 1e9

    def test_child_and_phase_build_the_tree(self):
        root = Span("request", attributes={"kind": "solve"})
        with root.phase("decode", bytes=120):
            pass
        lookup = root.child("cache_lookup")
        lookup.set_attribute("hit", False).end()
        root.end()
        assert [child.name for child in root.children] == [
            "decode",
            "cache_lookup",
        ]
        assert root.children[0].attributes == {"bytes": 120}
        assert root.find("cache_lookup").attributes == {"hit": False}
        assert root.find("missing") is None

    def test_phase_seconds_sums_repeated_phases(self):
        root = Span("request")
        for _ in range(3):
            root.child("retry").end()
        root.child("encode").end()
        totals = root.phase_seconds()
        assert set(totals) == {"retry", "encode"}
        assert totals["retry"] >= 0.0

    def test_iter_spans_is_depth_first(self):
        root = Span("a")
        b = root.child("b")
        b.child("c").end()
        b.end()
        root.child("d").end()
        root.end()
        assert [s.name for s in root.iter_spans()] == ["a", "b", "c", "d"]


class TestWireForm:
    def test_round_trip_is_byte_identical(self):
        root = Span("worker_solve", attributes={"fingerprint": "abc"})
        with root.phase("build_network", variables=12):
            pass
        child = root.child("solve")
        child.set_attribute("engine", "bitset")
        child.child("race").end()
        child.end()
        root.end()
        wire = json.dumps(root.to_dict(), sort_keys=True)
        rebuilt = span_from_dict(json.loads(wire))
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == wire

    def test_open_span_round_trips_with_null_end(self):
        root = Span("open")
        payload = root.to_dict()
        assert payload["end_ns"] is None
        assert span_from_dict(payload).end_ns is None

    def test_malformed_payload_raises_value_error(self):
        with pytest.raises(ValueError, match="malformed span"):
            span_from_dict({"children": []})
        with pytest.raises(ValueError, match="malformed span"):
            span_from_dict({"name": "x", "start_ns": 0, "children": [None]})

    def test_adopt_reparents_a_worker_tree(self):
        worker_root = Span("worker_solve")
        worker_root.child("solve").end()
        worker_root.end()
        shipped = json.loads(json.dumps(worker_root.to_dict()))

        dispatch = Span("dispatch")
        adopted = dispatch.adopt(shipped)
        dispatch.end()
        assert adopted in dispatch.children
        assert dispatch.find("solve") is adopted.children[0]
        # Timings were preserved exactly, not restamped.
        assert adopted.start_ns == worker_root.start_ns
        assert adopted.end_ns == worker_root.end_ns


class TestAmbientApi:
    def test_disabled_span_returns_the_shared_noop(self):
        handle = span("anything", key="value")
        with handle as live:
            assert live is NOOP_SPAN
        assert not NOOP_SPAN
        assert NOOP_SPAN.child("x") is NOOP_SPAN
        assert NOOP_SPAN.to_dict() == {}
        assert list(NOOP_SPAN.iter_spans()) == []

    def test_recording_nests_ambient_spans_and_restores_state(self):
        assert not trace.enabled()
        with recording("request", kind="solve") as root:
            assert trace.enabled()
            assert trace.current_span() is root
            with span("build_network") as build:
                assert trace.current_span() is build
                with span("ac3"):
                    pass
            with span("solve"):
                pass
        assert not trace.enabled()
        assert trace.current_span() is None
        assert [child.name for child in root.children] == [
            "build_network",
            "solve",
        ]
        assert root.children[0].children[0].name == "ac3"
        assert root.end_ns is not None

    def test_ambient_span_without_recording_floats(self):
        trace.set_enabled(True)
        with span("floating") as floating:
            assert floating is not NOOP_SPAN
            assert trace.current_span() is floating
        assert trace.current_span() is None

"""Metrics registry: instruments, snapshots, merge semantics."""

import json
import random

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    EFFORT_BUCKETS,
    Histogram,
    MetricsRegistry,
    merge_snapshot,
)


@pytest.fixture(autouse=True)
def _metrics_off():
    metrics.set_enabled(False)
    yield
    metrics.set_enabled(False)


class TestInstruments:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_inflight")
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 2
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 2, 3]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(555.5)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram(bounds=(10.0, 1.0))
        with pytest.raises(ValueError, match="sorted"):
            Histogram(bounds=())

    def test_default_bucket_sets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert list(EFFORT_BUCKETS) == sorted(EFFORT_BUCKETS)

    def test_labels_create_distinct_series_order_independent(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_cache", {"shard": "0", "op": "hit"})
        b = registry.counter("repro_cache", {"op": "hit", "shard": "0"})
        c = registry.counter("repro_cache", {"shard": "1", "op": "hit"})
        assert a is b
        assert a is not c

    def test_kind_collision_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_thing")


class TestMergeSemantics:
    """The cross-process contract: merge is a sum, any fold order."""

    @staticmethod
    def _worker_delta(seed: int) -> dict:
        """A plausible worker snapshot (counters + histogram)."""
        rng = random.Random(seed)
        registry = MetricsRegistry()
        for _ in range(rng.randint(1, 5)):
            registry.counter(
                "repro_solver_solves_total", {"engine": "bitset"}
            ).inc()
        registry.counter("repro_cache_misses_total").inc(rng.randint(0, 3))
        histogram = registry.histogram(
            "repro_engine_effort", {"engine": "bitset"}, bounds=EFFORT_BUCKETS
        )
        for _ in range(rng.randint(1, 4)):
            histogram.observe(rng.uniform(1, 1e6))
        return registry.snapshot()

    def test_merge_is_commutative(self):
        a, b = self._worker_delta(1), self._worker_delta(2)
        ab = merge_snapshot(a, b)
        ba = merge_snapshot(b, a)
        assert json.dumps(ab, sort_keys=True) == json.dumps(ba, sort_keys=True)

    def test_merge_is_associative(self):
        a, b, c = (self._worker_delta(seed) for seed in (1, 2, 3))
        left = merge_snapshot(merge_snapshot(a, b), c)
        right = merge_snapshot(a, merge_snapshot(b, c))
        assert json.dumps(left, sort_keys=True) == json.dumps(
            right, sort_keys=True
        )

    def test_interleaved_worker_completions_reach_the_same_registry(self):
        """Two workers, any completion order: same final registry."""
        deltas = [self._worker_delta(seed) for seed in (11, 12)]
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for delta in deltas:
            forward.merge_snapshot(delta)
        for delta in reversed(deltas):
            backward.merge_snapshot(delta)
        assert json.dumps(forward.snapshot(), sort_keys=True) == json.dumps(
            backward.snapshot(), sort_keys=True
        )

    def test_histograms_merge_bucket_for_bucket(self):
        base = MetricsRegistry()
        base.histogram("repro_latency", bounds=(1.0, 2.0)).observe(0.5)
        delta = MetricsRegistry()
        delta.histogram("repro_latency", bounds=(1.0, 2.0)).observe(1.5)
        base.merge_snapshot(delta.snapshot())
        merged = base.histogram("repro_latency", bounds=(1.0, 2.0))
        assert merged.bucket_counts == [1, 2]
        assert merged.count == 2
        assert merged.sum == pytest.approx(2.0)

    def test_mismatched_bounds_refuse_to_merge(self):
        base = MetricsRegistry()
        base.histogram("repro_latency", bounds=(1.0, 2.0)).observe(0.5)
        delta = MetricsRegistry()
        delta.histogram("repro_latency", bounds=(1.0, 5.0)).observe(0.5)
        with pytest.raises(ValueError, match="bounds disagree"):
            base.merge_snapshot(delta.snapshot())

    def test_snapshot_survives_json_wire(self):
        delta = self._worker_delta(7)
        wired = json.loads(json.dumps(delta))
        registry = MetricsRegistry()
        registry.merge_snapshot(wired)
        assert json.dumps(registry.snapshot(), sort_keys=True) == json.dumps(
            delta, sort_keys=True
        )


class TestModuleApi:
    def test_disabled_api_writes_nothing(self):
        before = json.dumps(metrics.get_registry().snapshot(), sort_keys=True)
        metrics.counter("repro_should_not_exist")
        metrics.gauge("repro_should_not_exist_either", 1.0)
        metrics.observe("repro_nor_this", 0.5)
        after = json.dumps(metrics.get_registry().snapshot(), sort_keys=True)
        assert before == after

    def test_collecting_captures_a_delta_and_restores(self):
        outer = metrics.get_registry()
        with metrics.collecting() as captured:
            assert metrics.enabled()
            metrics.counter("repro_worker_total", labels={"engine": "numpy"})
            metrics.observe("repro_worker_seconds", 0.02)
        assert metrics.get_registry() is outer
        assert not metrics.enabled()
        names = {entry["name"] for entry in captured.snapshot()["metrics"]}
        assert names == {"repro_worker_total", "repro_worker_seconds"}

"""Unit tests for repro.ir.expr."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.expr import AffineExpr


def _random_expr(draw_names=("i", "j", "k")):
    return st.builds(
        AffineExpr.from_mapping,
        st.dictionaries(st.sampled_from(draw_names), st.integers(-9, 9), max_size=3),
        st.integers(-20, 20),
    )


class TestConstruction:
    def test_constant(self):
        expr = AffineExpr.constant(5)
        assert expr.is_constant()
        assert expr.const == 5

    def test_var(self):
        expr = AffineExpr.var("i")
        assert expr.coefficient("i") == 1
        assert expr.const == 0

    def test_var_with_coefficient(self):
        assert AffineExpr.var("i", 3).coefficient("i") == 3

    def test_zero_coefficient_dropped(self):
        assert AffineExpr.var("i", 0) == AffineExpr.constant(0)

    def test_from_mapping_drops_zeros(self):
        expr = AffineExpr.from_mapping({"i": 0, "j": 2}, 1)
        assert expr.variables() == ("j",)

    def test_hashable(self):
        assert hash(AffineExpr.var("i") + 1) == hash(AffineExpr.var("i") + 1)


class TestArithmetic:
    def test_add_vars(self):
        expr = AffineExpr.var("i") + AffineExpr.var("j")
        assert expr.coefficient("i") == 1
        assert expr.coefficient("j") == 1

    def test_add_int(self):
        assert (AffineExpr.var("i") + 3).const == 3

    def test_radd(self):
        assert (3 + AffineExpr.var("i")).const == 3

    def test_sub_cancels(self):
        expr = AffineExpr.var("i") - AffineExpr.var("i")
        assert expr == AffineExpr.constant(0)

    def test_rsub(self):
        expr = 5 - AffineExpr.var("i")
        assert expr.coefficient("i") == -1
        assert expr.const == 5

    def test_mul(self):
        expr = (AffineExpr.var("i") + 2) * 3
        assert expr.coefficient("i") == 3
        assert expr.const == 6

    def test_rmul(self):
        assert (2 * AffineExpr.var("i")).coefficient("i") == 2

    def test_mul_non_int_raises(self):
        with pytest.raises(TypeError):
            AffineExpr.var("i") * 1.5

    def test_neg(self):
        expr = -(AffineExpr.var("i") - 4)
        assert expr.coefficient("i") == -1
        assert expr.const == 4

    @given(_random_expr(), _random_expr())
    @settings(max_examples=60)
    def test_add_commutative(self, left, right):
        assert left + right == right + left

    @given(_random_expr(), st.integers(-5, 5), st.integers(-5, 5))
    @settings(max_examples=60)
    def test_scaling_distributes(self, expr, a, b):
        assert expr * (a + b) == expr * a + expr * b


class TestEvaluate:
    def test_evaluate(self):
        expr = AffineExpr.var("i", 2) + AffineExpr.var("j", -1) + 7
        assert expr.evaluate({"i": 3, "j": 4}) == 9

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            AffineExpr.var("i").evaluate({})

    @given(
        _random_expr(),
        st.dictionaries(
            st.sampled_from(("i", "j", "k")),
            st.integers(-50, 50),
            min_size=3,
        ),
    )
    @settings(max_examples=60)
    def test_evaluation_is_linear(self, expr, point):
        doubled = {name: 2 * value for name, value in point.items()}
        assert expr.evaluate(doubled) - expr.const == 2 * (
            expr.evaluate(point) - expr.const
        )


class TestCoefficientsFor:
    def test_order_respected(self):
        expr = AffineExpr.var("j", 5) + AffineExpr.var("i", 2)
        assert expr.coefficients_for(("i", "j")) == (2, 5)

    def test_missing_from_order_raises(self):
        with pytest.raises(ValueError):
            AffineExpr.var("k").coefficients_for(("i", "j"))

    def test_absent_variables_are_zero(self):
        assert AffineExpr.constant(4).coefficients_for(("i", "j")) == (0, 0)


class TestSubstitute:
    def test_identity_substitution(self):
        expr = AffineExpr.var("i") + 2
        assert expr.substitute({}) == expr

    def test_swap(self):
        expr = AffineExpr.var("i") - AffineExpr.var("j")
        swapped = expr.substitute(
            {"i": AffineExpr.var("j"), "j": AffineExpr.var("i")}
        )
        assert swapped == AffineExpr.var("j") - AffineExpr.var("i")

    def test_affine_substitution(self):
        expr = AffineExpr.var("i", 2)
        result = expr.substitute({"i": AffineExpr.var("u") + 3})
        assert result == AffineExpr.var("u", 2) + 6


class TestStr:
    def test_simple(self):
        assert str(AffineExpr.var("i") + AffineExpr.var("j")) == "i+j"

    def test_negative_coefficient(self):
        assert str(AffineExpr.var("i") - AffineExpr.var("j")) == "i-j"

    def test_constant_zero(self):
        assert str(AffineExpr.constant(0)) == "0"

    def test_coefficient_rendering(self):
        assert str(AffineExpr.var("i", 2) + 1) == "2*i+1"

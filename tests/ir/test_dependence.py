"""Unit tests for repro.ir.dependence."""

import pytest

from repro.ir.dependence import analyze_nest_dependences
from repro.ir.expr import AffineExpr
from repro.ir.loops import Loop, LoopNest
from repro.ir.reference import AccessKind, ArrayRef

_i = AffineExpr.var("i")
_j = AffineExpr.var("j")


def _nest(body, name="n"):
    return LoopNest(name, (Loop("i", 0, 9), Loop("j", 0, 9)), tuple(body))


class TestUniformDependences:
    def test_stencil_distance(self):
        # A[i][j] = A[i-1][j]: flow dependence with distance (1, 0).
        body = [
            ArrayRef("A", (_i - 1, _j), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert info.distance_vectors() == ((1, 0),)
        assert not info.has_unknown

    def test_inner_distance(self):
        # A[i][j] = A[i][j-1]: distance (0, 1).
        body = [
            ArrayRef("A", (_i, _j - 1), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert info.distance_vectors() == ((0, 1),)

    def test_read_read_no_dependence(self):
        body = [
            ArrayRef("A", (_i, _j), AccessKind.READ),
            ArrayRef("A", (_i - 1, _j), AccessKind.READ),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert info.dependences == ()

    def test_loop_independent_dependence(self):
        # Read and write of the same element in one iteration.
        body = [
            ArrayRef("A", (_i, _j), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert len(info.dependences) == 1
        assert info.dependences[0].is_loop_independent
        assert info.distance_vectors() == ()

    def test_distance_normalized_lex_nonnegative(self):
        # A[i+1][j] read, A[i][j] written: the dependence flows forward,
        # distance must be reported lex-positive.
        body = [
            ArrayRef("A", (_i + 1, _j), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert info.distance_vectors() == ((1, 0),)

    def test_gcd_disproof(self):
        # A[2i] written, A[2i+1] read: never alias (parity).
        nest = LoopNest(
            "g",
            (Loop("i", 0, 9),),
            (
                ArrayRef("A", (_i * 2 + 1,), AccessKind.READ),
                ArrayRef("A", (_i * 2,), AccessKind.WRITE),
            ),
        )
        info = analyze_nest_dependences(nest)
        assert info.dependences == ()


class TestNonUniform:
    def test_transpose_pair_unknown(self):
        # A[i][j] and A[j][i] with a write: not a uniform pair.
        body = [
            ArrayRef("A", (_j, _i), AccessKind.READ),
            ArrayRef("A", (_i, _j), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert info.has_unknown

    def test_different_arrays_ignored(self):
        body = [
            ArrayRef("A", (_i, _j), AccessKind.READ),
            ArrayRef("B", (_j, _i), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert info.dependences == ()


class TestRankDeficient:
    def test_broadcast_row_gives_ray(self):
        # A[i][0] written for all j: the write aliases itself along the
        # j axis -- a dependence ray (0, 1), not a constant distance.
        body = [
            ArrayRef("A", (_i, AffineExpr.constant(0)), AccessKind.WRITE),
        ]
        info = analyze_nest_dependences(_nest(body))
        assert not info.has_unknown
        assert info.rays() == ((0, 1),)

    def test_matmul_accumulation_gives_ray(self):
        # T[i][j] read+write in an (i, j, k) nest: ray (0, 0, 1); all
        # loop permutations remain legal (the MxM property).
        from repro.ir.expr import AffineExpr as E

        nest = LoopNest(
            "mm",
            (Loop("i", 0, 3), Loop("j", 0, 3), Loop("k", 0, 3)),
            (
                ArrayRef("T", (E.var("i"), E.var("j")), AccessKind.READ),
                ArrayRef("T", (E.var("i"), E.var("j")), AccessKind.WRITE),
            ),
        )
        info = analyze_nest_dependences(nest)
        assert not info.has_unknown
        assert (0, 0, 1) in info.rays()

"""Unit tests for repro.ir.arrays, repro.ir.loops and repro.ir.program."""

import pytest

from repro.ir.arrays import ArrayDecl
from repro.ir.expr import AffineExpr
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program, make_program
from repro.ir.reference import AccessKind, ArrayRef

_i = AffineExpr.var("i")
_j = AffineExpr.var("j")


def _simple_nest(name="n", weight=1):
    return LoopNest(
        name,
        (Loop("i", 0, 3), Loop("j", 0, 4)),
        (
            ArrayRef("A", (_i, _j), AccessKind.READ),
            ArrayRef("B", (_j, _i), AccessKind.WRITE),
        ),
        weight,
    )


class TestArrayDecl:
    def test_sizes(self):
        decl = ArrayDecl("A", (10, 20), "float64")
        assert decl.rank == 2
        assert decl.element_count == 200
        assert decl.byte_size == 1600

    def test_index_box(self):
        assert ArrayDecl("A", (4, 6)).index_box() == ((0, 3), (0, 5))

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            ArrayDecl("9lives", (4,))

    def test_empty_extents(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", ())

    def test_nonpositive_extent(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", (0,))

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", (4,), "bf16")

    def test_str(self):
        assert str(ArrayDecl("A", (2, 3))) == "float32 A[2][3]"


class TestLoop:
    def test_trip_count(self):
        assert Loop("i", 0, 9).trip_count == 10

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Loop("i", 5, 4)

    def test_bad_name(self):
        with pytest.raises(ValueError):
            Loop("2i", 0, 4)


class TestLoopNest:
    def test_basic_properties(self):
        nest = _simple_nest(weight=2)
        assert nest.depth == 2
        assert nest.index_order == ("i", "j")
        assert nest.trip_count == 20
        assert nest.estimated_cost == 2 * 20 * 2

    def test_arrays_in_first_appearance_order(self):
        assert _simple_nest().arrays() == ("A", "B")

    def test_references_to(self):
        nest = _simple_nest()
        refs = nest.references_to("B")
        assert len(refs) == 1 and refs[0].is_write

    def test_iterations_lexicographic(self):
        nest = LoopNest(
            "t",
            (Loop("i", 0, 1), Loop("j", 0, 1)),
            (ArrayRef("A", (_i, _j)),),
        )
        assert list(nest.iterations()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_duplicate_index_rejected(self):
        with pytest.raises(ValueError):
            LoopNest(
                "bad",
                (Loop("i", 0, 1), Loop("i", 0, 1)),
                (ArrayRef("A", (_i,)),),
            )

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            LoopNest("bad", (Loop("i", 0, 1),), ())

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            _simple_nest(weight=0)


class TestProgram:
    def _program(self):
        return make_program(
            "p",
            [ArrayDecl("A", (8, 8)), ArrayDecl("B", (8, 8)), ArrayDecl("C", (4,))],
            [_simple_nest()],
        )

    def test_lookup(self):
        program = self._program()
        assert program.array("A").rank == 2
        with pytest.raises(KeyError):
            program.array("missing")

    def test_total_data_bytes(self):
        assert self._program().total_data_bytes() == 8 * 8 * 4 * 2 + 4 * 4

    def test_referenced_arrays_excludes_unused(self):
        assert self._program().referenced_arrays() == ("A", "B")

    def test_nests_referencing(self):
        program = self._program()
        assert len(program.nests_referencing("A")) == 1
        assert program.nests_referencing("C") == ()

    def test_duplicate_arrays_rejected(self):
        with pytest.raises(ValueError):
            make_program(
                "p", [ArrayDecl("A", (2,)), ArrayDecl("A", (2,))], [_simple_nest()]
            )

    def test_duplicate_nest_names_rejected(self):
        with pytest.raises(ValueError):
            make_program(
                "p",
                [ArrayDecl("A", (8, 8)), ArrayDecl("B", (8, 8))],
                [_simple_nest("n"), _simple_nest("n")],
            )


class TestArrayRef:
    def test_access_matrix_and_offset(self):
        ref = ArrayRef("Q", (_i + _j + 1, _j - 2))
        assert ref.access_matrix(("i", "j")) == ((1, 1), (0, 1))
        assert ref.offset_vector() == (1, -2)

    def test_element_at(self):
        ref = ArrayRef("Q", (_i + _j, _j))
        assert ref.element_at({"i": 2, "j": 3}) == (5, 3)

    def test_substituted(self):
        ref = ArrayRef("Q", (_i,))
        new = ref.substituted({"i": _j + 1})
        assert new.element_at({"j": 4}) == (5,)

    def test_no_subscripts_rejected(self):
        with pytest.raises(ValueError):
            ArrayRef("Q", ())

    def test_unknown_variable_raises_in_matrix(self):
        ref = ArrayRef("Q", (AffineExpr.var("k"),))
        with pytest.raises(ValueError):
            ref.access_matrix(("i", "j"))

"""Unit tests for the mini-language parser."""

import pytest

from repro.ir.expr import AffineExpr
from repro.ir.parser import ParseError, parse_program
from repro.ir.reference import AccessKind

FIGURE2 = """
array Q1[512][512] : float32
array Q2[512][512] : float32

nest fig2 weight=1 {
    for i1 = 0 .. 255 {
        for i2 = 0 .. 255 {
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }
    }
}
"""


class TestArrayDecls:
    def test_basic_decl(self):
        program = parse_program("array A[4][8]")
        decl = program.array("A")
        assert decl.extents == (4, 8)
        assert decl.element_type == "float32"

    def test_typed_decl(self):
        program = parse_program("array A[4] : float64")
        assert program.array("A").element_size == 8

    def test_unknown_type_rejected(self):
        with pytest.raises(ParseError):
            parse_program("array A[4] : quadruple")

    def test_missing_dims_rejected(self):
        with pytest.raises(ParseError):
            parse_program("array A\narray B[2]")

    def test_duplicate_decl_rejected(self):
        with pytest.raises(ValueError):
            parse_program("array A[2]\narray A[3]")


class TestNests:
    def test_figure2_shape(self):
        program = parse_program(FIGURE2, name="fig2-program")
        assert program.name == "fig2-program"
        nest = program.nests[0]
        assert nest.index_order == ("i1", "i2")
        assert nest.loops[0].trip_count == 256
        assert [ref.array for ref in nest.body] == ["Q2", "Q1"]

    def test_figure2_access_matrices(self):
        program = parse_program(FIGURE2)
        nest = program.nests[0]
        write = nest.body[-1]
        assert write.kind is AccessKind.WRITE
        assert write.access_matrix(("i1", "i2")) == ((1, 1), (0, 1))
        read = nest.body[0]
        assert read.kind is AccessKind.READ
        assert read.access_matrix(("i1", "i2")) == ((1, 1), (1, 0))

    def test_weight(self):
        program = parse_program(
            "array A[4]\nnest n weight=7 { for i = 0 .. 3 { load A[i] } }"
        )
        assert program.nests[0].weight == 7

    def test_load_statement_lists(self):
        program = parse_program(
            "array A[8]\narray B[8]\n"
            "nest n { for i = 0 .. 7 { load A[i], B[i] } }"
        )
        kinds = [ref.kind for ref in program.nests[0].body]
        assert kinds == [AccessKind.READ, AccessKind.READ]

    def test_rhs_operators(self):
        program = parse_program(
            "array A[8]\narray B[8]\narray C[8]\n"
            "nest n { for i = 0 .. 7 { A[i] = B[i] * C[i] + A[i] } }"
        )
        body = program.nests[0].body
        assert [ref.array for ref in body] == ["B", "C", "A", "A"]
        assert body[-1].kind is AccessKind.WRITE

    def test_imperfect_nesting_rejected(self):
        source = """
        array A[8][8]
        nest bad {
            for i = 0 .. 7 {
                A[i][0] = A[i][1]
                for j = 0 .. 7 { A[i][j] = A[i][j] }
            }
        }
        """
        with pytest.raises(ParseError):
            parse_program(source)

    def test_negative_bounds(self):
        program = parse_program(
            "array A[16]\nnest n { for i = -3 .. 3 { load A[i+3] } }"
        )
        loop = program.nests[0].loops[0]
        assert (loop.lower, loop.upper) == (-3, 3)


class TestSubscripts:
    def test_coefficient_syntax(self):
        program = parse_program(
            "array A[64][64]\nnest n { for i = 0 .. 9 { for j = 0 .. 9 "
            "{ load A[2*i+j][i-1+3] } } }"
        )
        reference = program.nests[0].body[0]
        assert reference.subscripts[0] == AffineExpr.from_mapping(
            {"i": 2, "j": 1}
        )
        assert reference.subscripts[1] == AffineExpr.from_mapping({"i": 1}, 2)

    def test_leading_minus(self):
        program = parse_program(
            "array A[32]\nnest n { for i = 0 .. 9 { load A[-i+20] } }"
        )
        subscript = program.nests[0].body[0].subscripts[0]
        assert subscript.coefficient("i") == -1
        assert subscript.const == 20

    def test_missing_subscripts_rejected(self):
        with pytest.raises(ParseError):
            parse_program("array A[4]\nnest n { for i = 0 .. 3 { load A } }")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_program("array A[4] @")

    def test_truncated_input(self):
        with pytest.raises(ParseError, match="unexpected end"):
            parse_program("array A[4]\nnest n { for i = 0 .. 3 {")

    def test_error_mentions_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_program("array A[4]\nnest 17 {}")

    def test_comments_ignored(self):
        program = parse_program(
            "# a comment\narray A[4] # trailing\n"
            "nest n { for i = 0 .. 3 { load A[i] } }"
        )
        assert program.array("A").extents == (4,)

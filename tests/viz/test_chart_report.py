"""Tests for the ASCII chart and the table formatter."""

import pytest

from repro.opt.report import format_table
from repro.viz.chart import stacked_bar_chart


class TestStackedBarChart:
    def test_half_and_half(self):
        chart = stacked_bar_chart({"x": [1, 1]}, ["a", "b"], width=8)
        assert "####====" in chart
        assert "a 50.0%" in chart

    def test_bar_width_exact(self):
        chart = stacked_bar_chart({"x": [1, 2, 3]}, ["a", "b", "c"], width=30)
        bar = chart.splitlines()[0].split()[1]
        assert len(bar) == 30

    def test_zero_total(self):
        chart = stacked_bar_chart({"x": [0, 0]}, ["a", "b"], width=10)
        assert "a 0.0%" in chart

    def test_legend_present(self):
        chart = stacked_bar_chart({"x": [1]}, ["only"], width=4)
        assert "legend: only '#'" in chart

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            stacked_bar_chart({"x": [1]}, ["a", "b"])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            stacked_bar_chart({}, [])

    def test_dominant_series(self):
        chart = stacked_bar_chart(
            {"bench": [90, 5, 5]}, ["bj", "var", "val"], width=20
        )
        assert "bj 90.0%" in chart


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "count"], [["a", 1], ["bb", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].endswith("1")
        assert lines[3].endswith("22")

    def test_title(self):
        table = format_table(["x"], [[1]], title="T")
        assert table.splitlines()[0] == "T"

    def test_float_rendering(self):
        table = format_table(["v"], [[1.23456]])
        assert "1.23" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "-" in table

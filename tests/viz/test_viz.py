"""Tests for the ASCII visualizations (Figures 1 and 3)."""

import pytest

from repro.csp.network import ConstraintNetwork
from repro.layout.layout import column_major, diagonal, row_major
from repro.viz.layout_art import layout_gallery, render_layout_grid
from repro.viz.search_art import (
    TraceRecorder,
    render_search_trace,
    traced_backtracking,
)


class TestLayoutArt:
    def test_row_major_rows_share_symbol(self):
        grid = render_layout_grid(row_major(2), size=4).splitlines()
        for line in grid:
            symbols = set(line.split())
            assert len(symbols) == 1

    def test_column_major_columns_share_symbol(self):
        grid = render_layout_grid(column_major(2), size=4).splitlines()
        columns = list(zip(*[line.split() for line in grid]))
        for column in columns:
            assert len(set(column)) == 1

    def test_diagonal_pattern(self):
        grid = [line.split() for line in render_layout_grid(diagonal(), 4).splitlines()]
        # Elements (1,0) and (2,1) share a diagonal.
        assert grid[1][0] == grid[2][1]
        assert grid[0][0] != grid[0][1]

    def test_gallery_contains_all_four(self):
        gallery = layout_gallery(4)
        for label in ("row-major", "column-major", "diagonal", "anti-diagonal"):
            assert label in gallery

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            render_layout_grid(row_major(3))


def _figure3_network() -> ConstraintNetwork:
    network = ConstraintNetwork()
    network.add_variable("Qk", [0, 1])
    network.add_variable("Qi", [0, 1, 2])
    network.add_variable("Qj", [0, 1])
    # Qj is only compatible with Qk = 1; Qi is irrelevant.
    network.add_constraint("Qk", "Qj", [(1, 0), (1, 1)])
    return network


class TestSearchArt:
    def test_backjump_skips_qi(self):
        """The Figure 3 scenario: with order Qk, Qi, Qj and Qk=0 first,
        the dead end at Qj jumps straight to Qk, skipping Qi."""
        network = _figure3_network()
        trace = render_search_trace(network, ["Qk", "Qi", "Qj"], backjumping=True)
        assert "backjump" in trace
        assert "Qj -> Qk" in trace
        assert "(skipped 1)" in trace
        assert "solution found" in trace

    def test_backtracking_returns_to_qi(self):
        network = _figure3_network()
        trace = render_search_trace(network, ["Qk", "Qi", "Qj"], backjumping=False)
        assert "backtrack Qj -> Qi" in trace
        assert "solution found" in trace

    def test_backjumping_does_less_work(self):
        network = _figure3_network()
        recorder_bt = TraceRecorder()
        traced_backtracking(network, ["Qk", "Qi", "Qj"], recorder_bt, False)
        recorder_bj = TraceRecorder()
        traced_backtracking(network, ["Qk", "Qi", "Qj"], recorder_bj, True)
        assert len(recorder_bj.events) < len(recorder_bt.events)

    def test_solutions_identical_for_both(self):
        network = _figure3_network()
        bt = traced_backtracking(network, ["Qk", "Qi", "Qj"], TraceRecorder(), False)
        bj = traced_backtracking(network, ["Qk", "Qi", "Qj"], TraceRecorder(), True)
        assert bt is not None and bj is not None
        assert network.is_solution(bt)
        assert network.is_solution(bj)

    def test_unsat_trace_reports_no_solution(self):
        network = ConstraintNetwork()
        network.add_variable("a", [0])
        network.add_variable("b", [0])
        network.add_constraint("a", "b", [(0, 0)])
        # Make it unsat by a second variable pair with no common value.
        network2 = ConstraintNetwork()
        network2.add_variable("a", [0, 1])
        network2.add_variable("b", [0, 1])
        network2.add_constraint("a", "b", [(0, 1), (1, 0)])
        network2.add_variable("c", [0])
        trace = render_search_trace(network2, ["a", "b", "c"], backjumping=False)
        assert "solution found" in trace  # this one is satisfiable

    def test_recorder_rendering_numbers_lines(self):
        recorder = TraceRecorder()
        recorder.assign("x", 1)
        recorder.solution()
        rendered = recorder.render()
        assert rendered.splitlines()[0].startswith("  1.")

"""Smoke tests: every example script must run and print sane output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    output = _run("quickstart.py")
    assert "diagonal (1  -1)" in output
    assert "column-major (0  1)" in output
    assert "improvement" in output.lower()


def test_layout_gallery():
    output = _run("layout_gallery.py")
    assert "row-major" in output
    assert "inflation" in output
    assert "(1  -1)" in output


def test_solver_comparison_on_mxm():
    output = _run("solver_comparison.py", "MxM")
    assert "enhanced" in output
    assert "base" in output
    assert "sat" in output


def test_dynamic_layouts():
    output = _run("dynamic_layouts.py")
    assert "layout changes: 1" in output
    assert "layout changes: 0" in output


def test_service_demo():
    output = _run("service_demo.py")
    assert "First batch (cold cache)" in output
    assert "winner=" in output
    assert "Throughput report" in output
    assert "served 5/5 from cache (100.0%)" in output


def test_simulation_guided():
    output = _run("simulation_guided.py")
    assert "refine='simulated'" in output
    assert "agreement: tau=" in output
    assert "simulation-guided choice" in output


@pytest.mark.slow
def test_matmul_pipeline():
    output = _run("matmul_pipeline.py")
    assert "Dependences" in output
    assert "constraint network" in output
    assert "Simulated execution" in output

"""End-to-end integration tests: program text -> layouts -> cycles.

These replicate the paper's whole pipeline on small programs where the
right answer is known, asserting both the layouts and the resulting
simulated speedups.
"""

import pytest

from repro.ir.parser import parse_program
from repro.layout.layout import column_major, diagonal, row_major
from repro.opt.heuristic import HeuristicOptimizer
from repro.opt.optimizer import LayoutOptimizer, select_transforms
from repro.simul.executor import simulate_program

#: Three arrays, three access styles; arrays are ~100KB each so L2
#: (64KB) cannot hide bad layouts.  Two passes over the data so the
#: measurement is not dominated by compulsory (cold) misses -- the
#: paper's benchmarks likewise revisit arrays across many nests.
MIXED = """
array R[160][160]
array C[160][160]
array D[320][160]
array OUT[160][160]
nest work weight=2 {
    for i = 0 .. 159 {
        for j = 0 .. 159 {
            OUT[i][j] = R[i][j] + C[j][i] + D[i+j][j]
        }
    }
}
nest rework weight=2 {
    for i = 0 .. 159 {
        for j = 0 .. 159 {
            OUT[i][j] = R[i][j] + C[j][i] + D[i+j][j]
        }
    }
}
"""


class TestMixedKernel:
    def test_optimizer_matches_each_pattern(self):
        program = parse_program(MIXED)
        outcome = LayoutOptimizer(scheme="enhanced").optimize(program)
        assert outcome.exact
        assert outcome.layouts["R"] == row_major(2)
        assert outcome.layouts["C"] == column_major(2)
        assert outcome.layouts["D"] == diagonal()
        assert outcome.layouts["OUT"] == row_major(2)

    def test_optimized_faster_than_original(self):
        program = parse_program(MIXED)
        original_layouts = {
            decl.name: row_major(decl.rank) for decl in program.arrays
        }
        optimized = LayoutOptimizer(scheme="enhanced").optimize(program).layouts
        before = simulate_program(program, original_layouts)
        after = simulate_program(program, optimized)
        assert after.cycles < before.cycles
        improvement = 1 - after.cycles / before.cycles
        assert improvement > 0.15

    def test_heuristic_also_improves(self):
        program = parse_program(MIXED)
        original_layouts = {
            decl.name: row_major(decl.rank) for decl in program.arrays
        }
        heuristic = HeuristicOptimizer().optimize(program).layouts
        before = simulate_program(program, original_layouts)
        after = simulate_program(program, heuristic)
        assert after.cycles < before.cycles


class TestMultiNestConflict:
    """Two nests disagree about B.  The network still has solutions
    (via loop restructuring combos); the chosen layouts plus per-nest
    transforms must beat the original program."""

    SOURCE = """
    array B[160][160]
    array X[160][160]
    array Y[160][160]
    nest producer weight=3 {
        for i = 0 .. 159 { for j = 0 .. 159 { X[i][j] = B[i][j] } }
    }
    nest consumer weight=3 {
        for i = 0 .. 159 { for j = 0 .. 159 { Y[i][j] = B[j][i] } }
    }
    """

    def test_solution_exists_and_improves(self):
        program = parse_program(self.SOURCE)
        outcome = LayoutOptimizer(scheme="enhanced").optimize(program)
        assert outcome.exact
        transforms = select_transforms(program, outcome.layouts)
        original = {
            decl.name: row_major(decl.rank) for decl in program.arrays
        }
        before = simulate_program(program, original)
        after = simulate_program(
            program, outcome.layouts, transforms=transforms
        )
        assert after.cycles < before.cycles

    def test_base_and_enhanced_agree_on_satisfiability(self):
        program = parse_program(self.SOURCE)
        base = LayoutOptimizer(scheme="base", seed=5).optimize(program)
        enhanced = LayoutOptimizer(scheme="enhanced").optimize(program)
        assert base.exact == enhanced.exact is True


class TestSchemesConsistency:
    @pytest.mark.parametrize("scheme", ["base", "enhanced", "cbj", "forward-checking"])
    def test_all_schemes_valid_on_mixed(self, scheme):
        program = parse_program(MIXED)
        outcome = LayoutOptimizer(scheme=scheme, seed=2).optimize(program)
        assert outcome.exact
        referenced = {
            name: outcome.layouts[name]
            for name in outcome.network.network.variables
        }
        assert outcome.network.network.is_solution(referenced)

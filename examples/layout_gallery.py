#!/usr/bin/env python3
"""Figure 1 gallery: the four 2-D layouts as hyperplane families.

Renders each layout of the paper's Figure 1 as an ASCII grid in which
array elements sharing a hyperplane (and therefore stored together)
share a symbol, then shows how the same hyperplane algebra materializes
into actual memory offsets -- including the data-space inflation of a
diagonal layout (footnote 2 of the paper).

Run:  python examples/layout_gallery.py
"""

from repro import Layout, LayoutMapping
from repro.ir.arrays import ArrayDecl
from repro.layout.layout import antidiagonal, column_major, diagonal, row_major
from repro.opt import format_table
from repro.viz.layout_art import layout_gallery


def main() -> None:
    print("=== Figure 1: hyperplane families ===\n")
    print(layout_gallery(size=8))
    print()

    print("=== Materialized mappings for an 8x8 float32 array ===\n")
    decl = ArrayDecl("Q", (8, 8))
    rows = []
    for name, layout in [
        ("row-major", row_major(2)),
        ("column-major", column_major(2)),
        ("diagonal", diagonal()),
        ("anti-diagonal", antidiagonal()),
        ("skewed (1 -2)", Layout(2, [(1, -2)])),
    ]:
        mapping = LayoutMapping.create(decl, layout)
        rows.append(
            [
                name,
                str(layout),
                "x".join(str(e) for e in mapping.extents),
                f"{mapping.inflation:.2f}x",
            ]
        )
    print(
        format_table(
            ["layout", "hyperplanes", "storage box", "inflation"], rows
        )
    )
    print()

    print("Offsets of the first diagonal under the diagonal layout:")
    mapping = LayoutMapping.create(decl, diagonal())
    offsets = [mapping.offset_of((k, k)) for k in range(8)]
    print(f"  elements (0,0)..(7,7) -> {offsets}  (consecutive: the")
    print("  diagonal is the fast storage direction)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compare the paper's solvers on one benchmark network.

Builds the constraint network of a Table 1 benchmark and runs the base
scheme, each single-enhancement variant (the Figure 4 ablation), the
full enhanced scheme, plus the extensions (conflict-directed
backjumping, forward checking, min-conflicts).  Prints search effort
and wall time per scheme.

Run:  python examples/solver_comparison.py [benchmark]
"""

import sys

from repro.bench import benchmark_build_options, build_benchmark
from repro.csp import (
    BacktrackingSolver,
    ConflictDirectedSolver,
    EnhancedSolver,
    EnhancementConfig,
    ForwardCheckingSolver,
    MinConflictsSolver,
)
from repro.opt import build_layout_network, format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Med-Im04"
    program = build_benchmark(name)
    layout_network = build_layout_network(program, benchmark_build_options())
    network = layout_network.network
    print(
        f"{name}: {len(network.variables)} arrays, "
        f"{len(network.constraints)} constraints, "
        f"domain size {layout_network.domain_size}"
    )
    print()

    solvers = [
        ("base", BacktrackingSolver(seed=1)),
        ("base+var", EnhancedSolver(EnhancementConfig(True, False, False), seed=1)),
        ("base+val", EnhancedSolver(EnhancementConfig(False, True, False), seed=1)),
        ("base+bj", EnhancedSolver(EnhancementConfig(False, False, True), seed=1)),
        ("enhanced", EnhancedSolver()),
        ("cbj", ConflictDirectedSolver()),
        ("forward-checking", ForwardCheckingSolver()),
        ("min-conflicts", MinConflictsSolver(seed=1, max_steps=50_000)),
    ]
    rows = []
    for label, solver in solvers:
        result = solver.solve(network)
        status = "sat" if result.satisfiable else (
            "UNSAT" if result.complete else "gave up"
        )
        rows.append(
            [
                label,
                status,
                result.stats.nodes,
                result.stats.backtracks,
                result.stats.backjumps,
                result.stats.consistency_checks,
                f"{result.stats.time_seconds:.3f}s",
            ]
        )
        if result.satisfiable:
            assert network.is_solution(result.assignment)
    print(
        format_table(
            ["scheme", "result", "nodes", "backtracks", "backjumps",
             "checks", "time"],
            rows,
        )
    )


if __name__ == "__main__":
    main()

"""Simulation-guided layout optimization on a Table 3 program.

The constraint network of Med-Im04 admits several solutions, and the
analytic model (locality classes) cannot always tell which one the
cache will actually like best.  This example runs the optimizer twice
-- classic, then with ``refine="simulated"`` -- and prints the
candidate table: analytic rank vs simulated rank, side by side.

Run with::

    PYTHONPATH=src python examples/simulation_guided.py [benchmark]
"""

import sys

from repro.bench import benchmark_build_options, build_benchmark
from repro.eval import SimulatedCostModel
from repro.opt.optimizer import LayoutOptimizer, select_transforms
from repro.opt.report import optimization_report
from repro.simul.executor import simulate_program
from repro.viz.chart import ranking_agreement_chart


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Med-Im04"
    program = build_benchmark(name)
    options = benchmark_build_options()

    print(f"=== {name}: analytic-only optimization ===")
    baseline = LayoutOptimizer(
        scheme="enhanced", seed=1, options=options
    ).optimize(program)
    transforms = select_transforms(
        program, baseline.layouts, options.include_reversals, options.skew_factors
    )
    baseline_cycles = simulate_program(
        program, baseline.layouts, transforms=transforms
    ).cycles
    print(f"analytic winner: {baseline_cycles:,} simulated cycles")

    print(f"\n=== {name}: refine='simulated' (the feedback loop) ===")
    outcome = LayoutOptimizer(
        scheme="enhanced",
        seed=1,
        options=options,
        refine=SimulatedCostModel(),
        refine_top_k=6,
    ).optimize(program)
    print(optimization_report(outcome))

    report = outcome.refinement
    print()
    print(
        ranking_agreement_chart(
            [candidate.label for candidate in report.candidates],
            [candidate.analytic_value for candidate in report.candidates],
            [candidate.refined_value for candidate in report.candidates],
        )
    )
    refined_cycles = report.chosen.refined_value
    saved = baseline_cycles - refined_cycles
    print(
        f"\nsimulation-guided choice: {refined_cycles:,.0f} cycles, "
        f"saving {saved:,.0f} vs the analytic winner"
    )


if __name__ == "__main__":
    main()

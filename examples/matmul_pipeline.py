#!/usr/bin/env python3
"""Whole-pipeline walk-through on MxM (triple matrix multiplication).

Demonstrates every stage a compiler based on this library would run:

1. dependence analysis and the legal-restructuring catalog per nest;
2. per-nest candidate layout combinations (Section 2's derivation);
3. constraint-network construction (Section 3);
4. solving with base and enhanced schemes (Section 4), plus the
   propagation heuristic [9] as the baseline;
5. cycle-accurate comparison of the resulting programs (Section 5).

Run:  python examples/matmul_pipeline.py
"""

from repro import row_major, simulate_program
from repro.bench import benchmark_build_options, build_benchmark
from repro.ir.dependence import analyze_nest_dependences
from repro.layout.candidates import nest_layout_combos
from repro.opt import (
    HeuristicOptimizer,
    LayoutOptimizer,
    build_layout_network,
    format_table,
    select_transforms,
)
from repro.transform.catalog import legal_transforms


def main() -> None:
    program = build_benchmark("MxM")
    options = benchmark_build_options()
    print(program)
    print()

    print("=== 1. Dependences and legal restructurings ===")
    for nest in program.nests:
        info = analyze_nest_dependences(nest)
        legal = legal_transforms(
            nest, options.include_reversals, options.skew_factors
        )
        rays = ", ".join(str(r) for r in info.rays()) or "none"
        print(
            f"  {nest.name}: rays [{rays}], "
            f"{len(legal)} legal transforms"
        )
    print()

    print("=== 2. Per-nest layout combinations ===")
    for nest in program.nests:
        combos = nest_layout_combos(
            program, nest, options.include_reversals, options.skew_factors
        )
        print(f"  {nest.name}: {len(combos)} combos; first three:")
        for combo in combos[:3]:
            assignment = ", ".join(
                f"{array}={layout}" for array, layout in combo.assignments
            )
            print(f"    [{combo.transform}] {assignment}")
    print()

    print("=== 3. The constraint network ===")
    layout_network = build_layout_network(program, options)
    print(layout_network.network)
    print()

    print("=== 4. Solving ===")
    versions = {}
    rows = []
    for scheme in ("base", "enhanced"):
        outcome = LayoutOptimizer(scheme=scheme, seed=1, options=options).optimize(
            program
        )
        versions[scheme] = outcome.layouts
        rows.append(
            [scheme, outcome.stats.nodes, f"{outcome.solve_seconds:.4f}s"]
        )
    heuristic = HeuristicOptimizer(
        options.include_reversals, options.skew_factors
    ).optimize(program)
    versions["heuristic"] = heuristic.layouts
    rows.append(["heuristic", "-", f"{heuristic.solve_seconds:.4f}s"])
    print(format_table(["scheme", "nodes", "solve time"], rows))
    print()
    for scheme, layouts in versions.items():
        summary = ", ".join(
            f"{name}={layout}" for name, layout in sorted(layouts.items())
        )
        print(f"  {scheme}: {summary}")
    print()

    print("=== 5. Simulated execution (paper's cache config) ===")
    versions["original"] = {
        decl.name: row_major(decl.rank) for decl in program.arrays
    }
    rows = []
    baseline_cycles = None
    for label in ("original", "heuristic", "base", "enhanced"):
        layouts = versions[label]
        transforms = (
            None
            if label == "original"
            else select_transforms(
                program, layouts, options.include_reversals, options.skew_factors
            )
        )
        result = simulate_program(program, layouts, transforms=transforms)
        if baseline_cycles is None:
            baseline_cycles = result.cycles
        saving = 100.0 * (1 - result.cycles / baseline_cycles)
        rows.append(
            [label, result.cycles, f"{result.l1_miss_rate:.3f}", f"{saving:.1f}%"]
        )
    print(
        format_table(
            ["version", "cycles", "L1D miss rate", "improvement"], rows
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Service demo: racing portfolio + result cache over a small batch.

Serves the MxM benchmark and a handful of synthetic programs through
the portfolio solver twice: the first batch races the schemes (one
process each, first exact winner takes the program), the second batch
is served entirely from the result cache.  The same flow is available
from the command line as ``python -m repro.service``.

Run:  python examples/service_demo.py
"""

from repro.bench import benchmark_build_options, build_benchmark, random_suite
from repro.service import PortfolioConfig, ResultCache, run_batch


def main() -> None:
    programs = [build_benchmark("MxM"), *random_suite(4, seed=7)]
    config = PortfolioConfig(
        schemes=("enhanced", "cbj", "weighted"), deadline_seconds=120.0
    )
    cache = ResultCache(capacity=64)
    print(
        f"Serving {len(programs)} programs through portfolio "
        f"[{', '.join(config.schemes)}]\n"
    )

    print("=== First batch (cold cache) ===")
    report = run_batch(
        programs,
        config,
        options=benchmark_build_options(),
        cache=cache,
        workers=2,
    )
    for result in report.results:
        print(
            f"  {result.program:<12} winner={result.winner:<10} "
            f"{'exact' if result.exact else 'best-effort':<12} "
            f"{result.solve_seconds * 1000:7.1f}ms"
        )
    print(report.format())
    print()

    print("=== Second batch (warm cache) ===")
    repeat = run_batch(
        programs,
        config,
        options=benchmark_build_options(),
        cache=cache,
        workers=2,
    )
    print(repeat.format())
    stats = cache.stats
    print(
        f"  cache stats: hits={stats.hits} misses={stats.misses} "
        f"stores={stats.stores}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: the paper's Figure 2 example, end to end.

Parses the exact loop nest of Figure 2, derives the constraint network,
solves it with the enhanced scheme, and confirms the paper's worked
answer: Q1 gets the diagonal layout (1 -1), Q2 gets column-major (0 1).
Then it simulates both the original (all row-major) and the optimized
program on the paper's cache configuration and reports the speedup.

Run:  python examples/quickstart.py
"""

from repro import LayoutOptimizer, parse_program, row_major, simulate_program
from repro.opt import format_table

FIGURE2 = """
# The loop nest of Figure 2 (array extents sized so i1+i2 stays in
# bounds; 260x260 float32 arrays are ~264KB each).
array Q1[520][260]
array Q2[520][260]

nest fig2 {
    for i1 = 0 .. 259 {
        for i2 = 0 .. 259 {
            Q1[i1+i2][i2] = Q2[i1+i2][i1]
        }
    }
}
"""


def main() -> None:
    program = parse_program(FIGURE2, name="figure2")
    print(program)
    print()

    # 1. Choose memory layouts with the constraint-network approach.
    outcome = LayoutOptimizer(scheme="enhanced").optimize(program)
    print("Chosen layouts (enhanced scheme):")
    for array, layout in sorted(outcome.layouts.items()):
        print(f"  {array}: {layout.describe()}")
    print(f"  solver: {outcome.stats.nodes} nodes, "
          f"{outcome.stats.consistency_checks} consistency checks, "
          f"{outcome.solve_seconds * 1000:.1f} ms")
    print()

    # 2. Measure the effect on the paper's simulated machine.
    original_layouts = {
        decl.name: row_major(decl.rank) for decl in program.arrays
    }
    before = simulate_program(program, original_layouts)
    after = simulate_program(program, outcome.layouts)
    improvement = 100.0 * (1 - after.cycles / before.cycles)

    rows = [
        ["original (row-major)", before.cycles, f"{before.l1_miss_rate:.3f}"],
        ["optimized layouts", after.cycles, f"{after.l1_miss_rate:.3f}"],
    ]
    print(format_table(["version", "cycles", "L1D miss rate"], rows))
    print(f"\nExecution time improvement: {improvement:.1f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Dynamic memory layouts (the paper's second future-work direction).

A program whose access pattern for array B flips between program
phases: the first (row-sweeping) phase wants row-major, the second
(column-sweeping) phase wants column-major.  A static layout must lose
one phase; the dynamic planner inserts a redistribution between the
phases when (and only when) the copy cost pays for itself.

Run:  python examples/dynamic_layouts.py
"""

from repro import parse_program
from repro.opt import DynamicLayoutPlanner, format_table

PHASED = """
array B[384][384]
array P1[384][384]
array P2[384][384]

# Phase 1: row sweeps over B, repeated (weight models an outer loop).
nest phase1 weight=12 {
    for i = 0 .. 383 { for j = 0 .. 383 { P1[i][j] = B[i][j] } }
}

# Phase 2: column sweeps over B, equally hot.
nest phase2 weight=12 {
    for i = 0 .. 383 { for j = 0 .. 383 { P2[i][j] = B[j][i] } }
}
"""


def main() -> None:
    program = parse_program(PHASED, name="phased")
    print(program)
    print()

    for cost_per_element in (2.0, 50.0):
        planner = DynamicLayoutPlanner(
            redistribution_cost_per_element=cost_per_element
        )
        plan = planner.plan(program, "B")
        print(
            f"=== redistribution cost {cost_per_element} per element ==="
        )
        rows = [
            [nest, str(layout)] for nest, layout in plan.schedule
        ]
        print(format_table(["nest", "layout of B"], rows))
        print(
            f"  layout changes: {plan.changes}; "
            f"dynamic cost {plan.total_cost:,.0f} vs "
            f"best static {plan.static_cost:,.0f} "
            f"({100 * plan.improvement:.1f}% better)"
        )
        print()

    print("All referenced arrays, cheap redistribution:")
    planner = DynamicLayoutPlanner(redistribution_cost_per_element=2.0)
    rows = []
    for array, plan in sorted(planner.plan_all(program).items()):
        rows.append(
            [
                array,
                plan.changes,
                f"{100 * plan.improvement:.1f}%",
            ]
        )
    print(format_table(["array", "changes", "gain vs static"], rows))


if __name__ == "__main__":
    main()
